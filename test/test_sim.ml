(* Tests for the discrete-event engine, synchronization and meters. *)

module Engine = Ufork_sim.Engine
module Sync = Ufork_sim.Sync
module Meter = Ufork_sim.Meter
module Costs = Ufork_sim.Costs
module Event = Ufork_sim.Event
module Trace = Ufork_sim.Trace

(* --- Engine basics --- *)

let test_single_thread_time () =
  let e = Engine.create ~cores:1 () in
  let finish = ref (-1L) in
  let _ =
    Engine.spawn e (fun () ->
        Engine.advance 100L;
        Engine.advance 50L;
        finish := Engine.current_time ())
  in
  Engine.run e;
  Alcotest.(check int64) "time accumulates" 150L !finish;
  Alcotest.(check int64) "engine time" 150L (Engine.now e);
  Alcotest.(check int) "no live" 0 (Engine.live_threads e)

let test_two_cores_parallel () =
  let e = Engine.create ~cores:2 () in
  let t1 = ref 0L and t2 = ref 0L in
  let _ = Engine.spawn e (fun () -> Engine.advance 100L; t1 := Engine.current_time ()) in
  let _ = Engine.spawn e (fun () -> Engine.advance 100L; t2 := Engine.current_time ()) in
  Engine.run e;
  Alcotest.(check int64) "parallel t1" 100L !t1;
  Alcotest.(check int64) "parallel t2" 100L !t2;
  Alcotest.(check int64) "wall = 100" 100L (Engine.now e)

let test_one_core_serializes () =
  let e = Engine.create ~cores:1 () in
  let t2 = ref 0L in
  let _ = Engine.spawn e (fun () -> Engine.advance 100L) in
  let _ = Engine.spawn e (fun () -> Engine.advance 100L; t2 := Engine.current_time ()) in
  Engine.run e;
  Alcotest.(check int64) "second waits for core" 200L !t2

let test_affinity () =
  let e = Engine.create ~cores:2 () in
  let t2 = ref 0L and core2 = ref (-1) in
  let _ = Engine.spawn ~affinity:1 e (fun () -> Engine.advance 100L) in
  let _ =
    Engine.spawn ~affinity:1 e (fun () ->
        Engine.advance 10L;
        core2 := Engine.current_core ();
        t2 := Engine.current_time ())
  in
  Engine.run e;
  Alcotest.(check int64) "pinned threads serialize" 110L !t2;
  Alcotest.(check int) "ran on core 1" 1 !core2

let test_yield_migration () =
  (* A yielding thread can resume on a different core and its later
     advances must charge the new core (regression test for the stale-core
     handler bug). *)
  let e = Engine.create ~cores:2 () in
  let log = ref [] in
  let _ =
    Engine.spawn e (fun () ->
        Engine.advance 10L;
        Engine.yield ();
        Engine.advance 10L;
        log := ("a", Engine.current_time ()) :: !log)
  in
  let _ =
    Engine.spawn e (fun () ->
        Engine.advance 100L;
        log := ("b", Engine.current_time ()) :: !log)
  in
  Engine.run e;
  Alcotest.(check int64) "a done at 20" 20L (List.assoc "a" !log);
  Alcotest.(check int64) "b done at 100" 100L (List.assoc "b" !log)

let test_sleep () =
  let e = Engine.create ~cores:1 () in
  let woke = ref 0L and other = ref 0L in
  let _ =
    Engine.spawn e (fun () ->
        Engine.sleep 1000L;
        woke := Engine.current_time ())
  in
  let _ =
    Engine.spawn e (fun () ->
        Engine.advance 200L;
        other := Engine.current_time ())
  in
  Engine.run e;
  Alcotest.(check int64) "sleeper wakes at 1000" 1000L !woke;
  Alcotest.(check int64) "core free during sleep" 200L !other

let test_spawn_from_thread () =
  let e = Engine.create ~cores:2 () in
  let child_done = ref 0L in
  let _ =
    Engine.spawn e (fun () ->
        Engine.advance 10L;
        ignore
          (Engine.spawn e (fun () ->
               Engine.advance 5L;
               child_done := Engine.current_time ())))
  in
  Engine.run e;
  Alcotest.(check int64) "nested spawn runs" 15L !child_done

let test_run_until () =
  let e = Engine.create ~cores:1 () in
  let steps = ref 0 in
  let _ =
    Engine.spawn e (fun () ->
        for _ = 1 to 100 do
          Engine.advance 10L;
          incr steps
        done)
  in
  Engine.run ~until:55L e;
  Alcotest.(check int64) "clock clamped" 55L (Engine.now e);
  Alcotest.(check bool) "stopped early" true (!steps < 100)

let test_blocked_thread_reported () =
  let e = Engine.create ~cores:1 () in
  let c = Sync.Cond.create () in
  let _ = Engine.spawn e (fun () -> Sync.Cond.wait c) in
  Engine.run e;
  Alcotest.(check int) "blocked" 1 (Engine.blocked_threads e);
  Alcotest.(check int) "still live" 1 (Engine.live_threads e)

let test_determinism () =
  let trace () =
    let e = Engine.create ~cores:2 () in
    let log = ref [] in
    for i = 1 to 10 do
      ignore
        (Engine.spawn e (fun () ->
             Engine.advance (Int64.of_int (i * 7));
             Engine.yield ();
             Engine.advance (Int64.of_int (i * 3));
             log := (i, Engine.current_time ()) :: !log))
    done;
    Engine.run e;
    !log
  in
  Alcotest.(check bool) "same schedule twice" true (trace () = trace ())

let test_zero_advance () =
  let e = Engine.create ~cores:1 () in
  let ran = ref false in
  let _ =
    Engine.spawn e (fun () ->
        Engine.advance 0L;
        ran := true)
  in
  Engine.run e;
  Alcotest.(check bool) "zero advance completes" true !ran;
  Alcotest.(check int64) "no time passed" 0L (Engine.now e)

let test_negative_advance_rejected () =
  let e = Engine.create ~cores:1 () in
  let _ =
    Engine.spawn e (fun () ->
        match Engine.advance (-1L) with
        | () -> Alcotest.fail "negative advance accepted"
        | exception Invalid_argument _ -> ())
  in
  Engine.run e

let test_spawn_storm () =
  (* Many short threads across few cores: everyone runs, time is the
     serialized sum over the bottleneck core, and nothing deadlocks. *)
  let e = Engine.create ~cores:3 () in
  let completed = ref 0 in
  for _ = 1 to 500 do
    ignore
      (Engine.spawn e (fun () ->
           Engine.advance 30L;
           incr completed))
  done;
  Engine.run e;
  Alcotest.(check int) "all ran" 500 !completed;
  Alcotest.(check int64) "makespan = ceil(500/3)*30" (Int64.of_int (167 * 30))
    (Engine.now e)

let test_same_time_fifo () =
  (* Threads readied at the same instant run in FIFO order on one core. *)
  let e = Engine.create ~cores:1 () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.spawn e (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_ready_fifo_across_queues () =
  (* Simultaneously-ready threads start in spawn order even though their
     home queues alternate across cores: dispatch follows the global
     ready stamp, not core index. *)
  let e = Engine.create ~cores:2 () in
  let order = ref [] in
  for i = 1 to 4 do
    ignore
      (Engine.spawn e (fun () ->
           order := i :: !order;
           Engine.advance 10L))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "global fifo" [ 1; 2; 3; 4 ] (List.rev !order)

let test_steal_rehomes () =
  (* t1 (home core 1) occupies its core; when core 0 frees up, t3 (also
     homed on core 1) is stolen onto it rather than waiting. *)
  let e = Engine.create ~cores:2 () in
  let t3_core = ref (-1) and t3_time = ref (-1L) in
  let _ = Engine.spawn e (fun () -> Engine.advance 100L) in
  let _ = Engine.spawn e (fun () -> Engine.advance 10L) in
  let _ =
    Engine.spawn e (fun () ->
        t3_core := Engine.current_core ();
        t3_time := Engine.current_time ();
        Engine.advance 10L)
  in
  Engine.run e;
  Alcotest.(check int) "stolen onto core 0" 0 !t3_core;
  Alcotest.(check int64) "ran when core 0 freed" 10L !t3_time;
  Alcotest.(check int) "one steal counted" 1 (Engine.steals e)

let test_pinned_blocked_does_not_shadow () =
  (* A pinned entry waiting for its busy core must not block a younger
     unpinned entry behind it in the same queue: the unpinned one is
     stolen past it. *)
  let e = Engine.create ~cores:2 () in
  let b_time = ref (-1L) and c_time = ref (-1L) and c_core = ref (-1) in
  let _ = Engine.spawn ~affinity:1 e (fun () -> Engine.advance 100L) in
  let _ =
    Engine.spawn ~affinity:1 e (fun () -> b_time := Engine.current_time ())
  in
  let _ =
    Engine.spawn e (fun () ->
        c_time := Engine.current_time ();
        c_core := Engine.current_core ())
  in
  Engine.run e;
  Alcotest.(check int64) "pinned waits for its core" 100L !b_time;
  Alcotest.(check int64) "unpinned runs immediately" 0L !c_time;
  Alcotest.(check int) "on the idle core" 0 !c_core

let test_many_cores_parallel () =
  (* The SMP sweep's upper end: 128 cores run 128 threads fully in
     parallel. *)
  let e = Engine.create ~cores:128 () in
  let completed = ref 0 in
  for _ = 1 to 128 do
    ignore
      (Engine.spawn e (fun () ->
           Engine.advance 100L;
           incr completed))
  done;
  Engine.run e;
  Alcotest.(check int) "all ran" 128 !completed;
  Alcotest.(check int64) "fully parallel" 100L (Engine.now e);
  Alcotest.(check int) "no steals needed" 0 (Engine.steals e)

let test_waker_pending () =
  let e = Engine.create ~cores:1 () in
  let stash = ref None in
  let _ = Engine.spawn e (fun () -> Engine.suspend (fun w -> stash := Some w)) in
  Engine.run e;
  match !stash with
  | None -> Alcotest.fail "no waker"
  | Some w ->
      Alcotest.(check bool) "pending before" true (Engine.waker_pending w);
      Engine.wake w;
      Engine.run e;
      Alcotest.(check bool) "used after" false (Engine.waker_pending w);
      Alcotest.check_raises "double wake"
        (Invalid_argument "Engine.wake: waker already used") (fun () ->
          Engine.wake w)

(* --- Locks --- *)

let test_lock_mutual_exclusion () =
  let e = Engine.create ~cores:4 () in
  let l = Sync.Lock.create () in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 8 do
    ignore
      (Engine.spawn e (fun () ->
           Sync.Lock.with_lock l (fun () ->
               incr inside;
               max_inside := max !max_inside !inside;
               Engine.advance 10L;
               decr inside)))
  done;
  Engine.run e;
  Alcotest.(check int) "never concurrent" 1 !max_inside;
  Alcotest.(check int64) "fully serialized" 80L (Engine.now e)

let test_lock_fifo () =
  let e = Engine.create ~cores:1 () in
  let l = Sync.Lock.create () in
  let order = ref [] in
  for i = 1 to 4 do
    ignore
      (Engine.spawn e (fun () ->
           Sync.Lock.with_lock l (fun () ->
               order := i :: !order;
               Engine.advance 5L)))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4 ] (List.rev !order)

let test_lock_release_unheld () =
  let l = Sync.Lock.create () in
  Alcotest.check_raises "release unheld"
    (Invalid_argument "Lock.release: not held") (fun () -> Sync.Lock.release l)

let test_lock_released_on_exception () =
  let e = Engine.create ~cores:1 () in
  let l = Sync.Lock.create () in
  let ok = ref false in
  let _ =
    Engine.spawn e (fun () ->
        (try Sync.Lock.with_lock l (fun () -> failwith "boom")
         with Failure _ -> ());
        ok := not (Sync.Lock.locked l))
  in
  Engine.run e;
  Alcotest.(check bool) "released" true !ok

(* --- Cond --- *)

let test_cond_signal_order () =
  let e = Engine.create ~cores:2 () in
  let c = Sync.Cond.create () in
  let woken = ref [] in
  for i = 1 to 3 do
    ignore
      (Engine.spawn e (fun () ->
           Sync.Cond.wait c;
           woken := i :: !woken))
  done;
  let _ =
    Engine.spawn e (fun () ->
        Engine.advance 10L;
        Sync.Cond.signal c;
        Engine.advance 10L;
        Sync.Cond.broadcast c)
  in
  Engine.run e;
  Alcotest.(check int) "all woken" 3 (List.length !woken);
  Alcotest.(check int) "first is 1" 1 (List.nth (List.rev !woken) 0)

let test_cond_signal_empty () =
  let c = Sync.Cond.create () in
  Sync.Cond.signal c;
  Alcotest.(check int) "no waiters" 0 (Sync.Cond.waiters c)

(* --- Meter --- *)

let test_meter () =
  let m = Meter.create () in
  Meter.incr m "a";
  Meter.incr m "a";
  Meter.add m "b" 5;
  Alcotest.(check int) "a" 2 (Meter.get m "a");
  Alcotest.(check int) "b" 5 (Meter.get m "b");
  Alcotest.(check int) "missing" 0 (Meter.get m "zzz");
  Meter.set m "a" 100;
  Alcotest.(check int) "set" 100 (Meter.get m "a");
  Alcotest.(check (list (pair string int))) "sorted" [ ("a", 100); ("b", 5) ]
    (Meter.to_list m);
  Meter.reset m;
  Alcotest.(check int) "reset" 0 (Meter.get m "a");
  (* Reset zeroes values but keeps the key registry: a meter that is
     printed or exported after reset still lists every key it ever saw. *)
  Alcotest.(check (list (pair string int)))
    "registry survives reset"
    [ ("a", 0); ("b", 0) ]
    (Meter.to_list m)

(* --- Costs --- *)

let test_costs_presets () =
  Alcotest.(check bool) "ufork syscall cheaper than cheribsd" true
    (Costs.ufork.Costs.syscall < Costs.cheribsd.Costs.syscall);
  Alcotest.(check int64) "single AS has no AS switch" 0L
    Costs.ufork.Costs.address_space_switch;
  Alcotest.(check bool) "nephele domain create dominates" true
    (Costs.nephele.Costs.domain_create > 10_000_000L);
  Alcotest.(check int64) "bytes cost" 100L (Costs.bytes_cost 1.0 100)

(* --- Event bus (Trace) --- *)

let test_emit_charges_and_counts () =
  let e = Engine.create ~cores:1 () in
  let tr = Trace.create ~engine:e ~costs:Costs.ufork () in
  let _ =
    Engine.spawn e (fun () ->
        Trace.emit tr Event.Context_switch;
        Trace.emit tr ~pid:7 (Event.Pte_copy 1);
        Trace.emit tr (Event.Page_alloc 3))
  in
  Engine.run e;
  let m = Trace.meter tr in
  Alcotest.(check int) "context_switch" 1 (Meter.get m "context_switch");
  Alcotest.(check int) "pte_copy" 1 (Meter.get m "pte_copy");
  Alcotest.(check int) "page_alloc counts pages" 3 (Meter.get m "page_alloc");
  let expected =
    let c = Costs.ufork in
    Int64.add c.Costs.context_switch
      (Int64.add c.Costs.pte_copy (Int64.mul 3L c.Costs.page_alloc))
  in
  Alcotest.(check int64) "charged = engine busy cycles" expected
    (Trace.total_charged tr);
  Alcotest.(check int64) "engine advanced the same" expected
    (Engine.advanced e);
  Trace.audit tr ~costs:Costs.ufork ~elapsed:(Engine.advanced e)

let test_emit_outside_thread_counts_without_charging () =
  (* Boot-time emissions (initial image mapping, unit tests poking at a
     kernel directly) count in the meter but charge nothing. *)
  let e = Engine.create ~cores:1 () in
  let tr = Trace.create ~engine:e ~costs:Costs.ufork () in
  Trace.emit tr (Event.Pte_copy 1);
  Alcotest.(check int) "counted" 1 (Meter.get (Trace.meter tr) "pte_copy");
  Alcotest.(check int64) "not charged" 0L (Trace.total_charged tr);
  Trace.audit tr ~costs:Costs.ufork ~elapsed:(Engine.advanced e)

let test_audit_catches_uncharged_advance () =
  (* A raw Engine.advance that bypasses the bus must trip the audit. *)
  let e = Engine.create ~cores:1 () in
  let tr = Trace.create ~engine:e ~costs:Costs.ufork () in
  let _ =
    Engine.spawn e (fun () ->
        Trace.emit tr Event.Context_switch;
        Engine.advance 123L)
  in
  Engine.run e;
  match Trace.audit tr ~costs:Costs.ufork ~elapsed:(Engine.advanced e) with
  | () -> Alcotest.fail "audit accepted an uncharged advance"
  | exception Trace.Audit_failure _ -> ()

let test_trace_jsonl_record_shape () =
  let e = Engine.create ~cores:1 () in
  let tr = Trace.create ~engine:e ~costs:Costs.ufork () in
  Trace.set_recording tr true;
  let _ =
    Engine.spawn e (fun () ->
        Trace.emit tr ~pid:42 (Event.Syscall { name = "read"; trap = false }))
  in
  Engine.run e;
  match Trace.records tr with
  | [ r ] ->
      Alcotest.(check int) "pid" 42 r.Trace.pid;
      Alcotest.(check int) "core" 0 r.Trace.core;
      let line = Trace.record_to_json r in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun field ->
          Alcotest.(check bool)
            (Printf.sprintf "JSONL has %S" field)
            true (contains line field))
        [ "\"t\":"; "\"core\":"; "\"tid\":"; "\"pid\":"; "\"event\":" ]
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs)

let prop_event_key_injective =
  (* No two constructors may share a counter key, or the audit's per-key
     recomputation (and every benchmark reading the meter) would conflate
     mechanisms. [Event.samples] holds one representative of each. *)
  let n = List.length Event.samples in
  QCheck.Test.make ~name:"Event.to_key is injective across constructors"
    ~count:200
    QCheck.(pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    (fun (i, j) ->
      let ei = List.nth Event.samples i and ej = List.nth Event.samples j in
      i = j || Event.to_key ei <> Event.to_key ej)

let prop_trace_ring_bounded_and_monotonic =
  QCheck.Test.make
    ~name:"trace ring stays bounded; per-core timestamps are monotonic"
    ~count:30
    QCheck.(
      triple (int_range 1 4) (int_range 1 32)
        (list_of_size Gen.(1 -- 8) (int_range 1 25)))
    (fun (cores, capacity, thread_events) ->
      let e = Engine.create ~cores () in
      let tr = Trace.create ~engine:e ~costs:Costs.ufork ~ring_capacity:capacity () in
      Trace.set_recording tr true;
      let total = List.fold_left ( + ) 0 thread_events in
      List.iter
        (fun n ->
          ignore
            (Engine.spawn e (fun () ->
                 for _ = 1 to n do
                   Trace.emit tr Event.Context_switch;
                   Engine.yield ()
                 done)))
        thread_events;
      Engine.run e;
      let records = Trace.records tr in
      let kept = List.length records in
      let bounded = kept <= capacity && kept = min total capacity in
      let accounted = kept + Trace.dropped tr = total in
      (* Within one core, records appear in simulated-time order. *)
      let monotonic =
        let last = Hashtbl.create 8 in
        List.for_all
          (fun (r : Trace.record) ->
            let prev =
              Option.value (Hashtbl.find_opt last r.Trace.core) ~default:(-1L)
            in
            Hashtbl.replace last r.Trace.core r.Trace.t;
            r.Trace.t >= prev)
          records
      in
      bounded && accounted && monotonic)

(* --- Property: random workloads complete with consistent time --- *)

let prop_random_workload =
  QCheck.Test.make ~name:"random task graphs complete deterministically"
    ~count:50
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(1 -- 20) (int_range 1 500)))
    (fun (cores, works) ->
      let run () =
        let e = Engine.create ~cores () in
        let total = ref 0L in
        List.iter
          (fun w ->
            ignore
              (Engine.spawn e (fun () ->
                   Engine.advance (Int64.of_int w);
                   Engine.yield ();
                   Engine.advance (Int64.of_int w);
                   total := Int64.add !total (Int64.of_int w))))
          works;
        Engine.run e;
        (Engine.now e, !total, Engine.live_threads e)
      in
      let t1, sum1, live1 = run () in
      let t2, sum2, live2 = run () in
      let work_total =
        List.fold_left (fun acc w -> Int64.add acc (Int64.of_int (2 * w))) 0L works
      in
      (* Deterministic; everyone ran; makespan bounds hold. *)
      t1 = t2 && sum1 = sum2 && live1 = 0 && live2 = 0
      && t1 >= Int64.div work_total (Int64.of_int cores)
      && t1 <= work_total)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    ("single thread time", `Quick, test_single_thread_time);
    ("two cores parallel", `Quick, test_two_cores_parallel);
    ("one core serializes", `Quick, test_one_core_serializes);
    ("affinity", `Quick, test_affinity);
    ("yield migration", `Quick, test_yield_migration);
    ("sleep", `Quick, test_sleep);
    ("spawn from thread", `Quick, test_spawn_from_thread);
    ("run until", `Quick, test_run_until);
    ("blocked reported", `Quick, test_blocked_thread_reported);
    ("deterministic schedule", `Quick, test_determinism);
    ("zero advance", `Quick, test_zero_advance);
    ("negative advance", `Quick, test_negative_advance_rejected);
    ("spawn storm", `Quick, test_spawn_storm);
    ("same-time FIFO", `Quick, test_same_time_fifo);
    ("ready FIFO across run queues", `Quick, test_ready_fifo_across_queues);
    ("steal re-homes to idle core", `Quick, test_steal_rehomes);
    ("blocked pinned entry does not shadow", `Quick,
     test_pinned_blocked_does_not_shadow);
    ("128 cores fully parallel", `Quick, test_many_cores_parallel);
    ("waker pending", `Quick, test_waker_pending);
    ("lock mutual exclusion", `Quick, test_lock_mutual_exclusion);
    ("lock fifo", `Quick, test_lock_fifo);
    ("lock release unheld", `Quick, test_lock_release_unheld);
    ("lock release on exception", `Quick, test_lock_released_on_exception);
    ("cond signal order", `Quick, test_cond_signal_order);
    ("cond signal empty", `Quick, test_cond_signal_empty);
    ("meter", `Quick, test_meter);
    ("costs presets", `Quick, test_costs_presets);
    ("emit charges and counts", `Quick, test_emit_charges_and_counts);
    ( "emit outside thread",
      `Quick,
      test_emit_outside_thread_counts_without_charging );
    ("audit catches raw advance", `Quick, test_audit_catches_uncharged_advance);
    ("jsonl record shape", `Quick, test_trace_jsonl_record_shape);
    qt prop_event_key_injective;
    qt prop_trace_ring_bounded_and_monotonic;
    qt prop_random_workload;
  ]
