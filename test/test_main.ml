let () =
  Alcotest.run "ufork"
    [
      ("util", Test_util.suite);
      ("cheri", Test_cheri.suite);
      ("mem", Test_mem.suite);
      ("sim", Test_sim.suite);
      ("sas", Test_sas.suite);
      ("core", Test_core.suite);
      ("baselines", Test_baselines.suite);
      ("apps", Test_apps.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_props.suite);
      ("analysis", Test_analysis.suite);
      ("race", Test_race.suite);
      ("lockdep", Test_lockdep.suite);
      ("causal", Test_causal.suite);
      ("lint", Test_lint.suite);
      ("profile", Test_profile.suite);
      ("integration", Test_integration.suite);
      ("golden", Test_golden.suite);
    ]
