(* Golden-trace regression for the System/Fork_spine/Memops refactor.

   The refactor batches fork-time page-range events (one [Pte_copy n]
   per region instead of n singletons) and reorders event-silent steps,
   but must leave the *accounting* bit-identical: every meter counter
   and the engine's total advanced cycles must match pre-refactor
   recordings exactly.

   The expected values live in golden/golden_seed.txt, recorded from the
   seed tree (commit 52edf5c) by golden/golden_dump.exe. Regenerate the
   file with that tool only for an *intentional* accounting change, and
   say so in the commit message. *)

module Engine = Ufork_sim.Engine
module Meter = Ufork_sim.Meter
module Trace = Ufork_sim.Trace
module Kernel = Ufork_sas.Kernel
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Strategy = Ufork_core.Strategy
module Os = Ufork_core.Os
module System = Ufork_core.System
module Monolithic = Ufork_baselines.Monolithic
module Vmclone = Ufork_baselines.Vmclone
module Hello = Ufork_apps.Hello
module Kvstore = Ufork_apps.Kvstore
module Rdb = Ufork_apps.Rdb
module Keyspace = Ufork_workload.Keyspace
module Checker = Ufork_analysis.Checker
module Lint = Ufork_analysis.Lint
module Invariant = Ufork_analysis.Invariant

let boot ?(cores = 4) = function
  | "ufork-copa" ->
      Os.system
        (Os.boot ~cores ~config:Config.ufork_fast ~strategy:Strategy.Copa ())
  | "cheribsd" -> Monolithic.system (Monolithic.boot ~cores ())
  | "nephele" -> Vmclone.system (Vmclone.boot ~cores ())
  | s -> invalid_arg s

(* Audit the bus, sweep machine state, and lint the recorded protocol:
   the golden comparison is only meaningful on a machine that is itself
   clean. *)
let finish sys =
  let k = System.kernel sys in
  Trace.audit (Kernel.trace k) ~costs:(Kernel.costs k)
    ~elapsed:(Engine.advanced (System.engine sys));
  Checker.assert_safe k;
  match Lint.of_trace (Kernel.trace k) with
  | [] -> ()
  | vs -> Alcotest.failf "lint violations:\n%s" (Invariant.report vs)

let dump_lines label sys =
  Printf.sprintf "SCENARIO %s" label
  :: Printf.sprintf "advanced %Ld" (Engine.advanced (System.engine sys))
  :: Printf.sprintf "charged %Ld"
       (Trace.total_charged (System.trace sys))
  :: (List.map
        (fun (k, v) -> Printf.sprintf "METER %s %d" k v)
        (Meter.to_list (System.meter sys))
     @ List.map
         (fun (st : Trace.span_total) ->
           Printf.sprintf "SPAN %s self %Ld total %Ld n %d"
             (String.concat ";" st.Trace.span_path)
             st.Trace.span_self st.Trace.span_cycles st.Trace.span_count)
         (Trace.span_totals (System.trace sys)))

let hello ?cores ?(tag = "hello") label =
  let sys = boot ?cores label in
  Trace.set_recording (System.trace sys) true;
  ignore
    (System.start sys ~image:Image.hello (fun api ->
         ignore (Hello.fork_once api);
         Hello.reap api));
  System.run sys;
  finish sys;
  dump_lines (tag ^ "/" ^ label) sys

let redis label =
  let entries = 100 and value_len = 100 * 1024 in
  let db_bytes = entries * value_len in
  let heap_bytes = max (4 * 1024 * 1024) (db_bytes * 137 / 100) in
  let sys = boot label in
  Trace.set_recording (System.trace sys) true;
  let result = ref None in
  ignore
    (System.start sys ~image:(Image.redis ~heap_bytes) (fun api ->
         let store = Kvstore.create api ~buckets:1024 () in
         Keyspace.populate store ~entries ~value_len ~seed:0x5eedL;
         result := Some (Rdb.bgsave api store ~path:"/dump.rdb")));
  System.run sys;
  finish sys;
  Alcotest.(check bool) "bgsave completed" true (!result <> None);
  dump_lines ("redis10mb/" ^ label) sys

(* golden/golden_seed.txt parsed into scenario -> expected lines
   (each block includes its own SCENARIO header line). *)
let golden_path = "../golden/golden_seed.txt"

let expected_scenarios =
  lazy
    (let ic = open_in golden_path in
     let lines = ref [] in
     (try
        while true do
          lines := input_line ic :: !lines
        done
      with End_of_file -> close_in ic);
     let blocks = ref [] and current = ref [] in
     let flush () =
       match List.rev !current with
       | [] -> ()
       | header :: _ as block ->
           blocks :=
             (String.sub header 9 (String.length header - 9), block) :: !blocks
     in
     List.iter
       (fun line ->
         if String.length line > 9 && String.sub line 0 9 = "SCENARIO " then (
           flush ();
           current := [ line ])
         else if !current <> [] then current := line :: !current)
       (List.rev !lines);
     flush ();
     List.rev !blocks)

let check_scenario scenario run () =
  let expected =
    match List.assoc_opt scenario (Lazy.force expected_scenarios) with
    | Some lines -> lines
    | None -> Alcotest.failf "scenario %s missing from %s" scenario golden_path
  in
  Alcotest.(check (list string)) scenario expected (run ())

let scenarios =
  [
    ("hello/ufork-copa", fun () -> hello "ufork-copa");
    ("hello/cheribsd", fun () -> hello "cheribsd");
    ("hello/nephele", fun () -> hello "nephele");
    (* 8-core point: pins run-queue / per-core-freelist / shootdown-window
       accounting above the default 4 cores. *)
    ("hello-8core/ufork-copa", fun () -> hello ~cores:8 ~tag:"hello-8core" "ufork-copa");
    ("redis10mb/ufork-copa", fun () -> redis "ufork-copa");
    ("redis10mb/cheribsd", fun () -> redis "cheribsd");
    ("redis10mb/nephele", fun () -> redis "nephele");
  ]

(* Every block in the recording must have a live check — a scenario
   silently dropped from this file would hollow out the regression. *)
let covers_recording () =
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name scenarios) then
        Alcotest.failf "recorded scenario %s has no golden test" name)
    (Lazy.force expected_scenarios)

let suite =
  List.map
    (fun (name, run) ->
      Alcotest.test_case name `Slow (check_scenario name run))
    scenarios
  @ [ Alcotest.test_case "recording fully covered" `Quick covers_recording ]
