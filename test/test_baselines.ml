(* Tests for the CheriBSD-like monolithic baseline and the Nephele-like
   VM-clone baseline. *)

module Capability = Ufork_cheri.Capability
module Meter = Ufork_sim.Meter
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Api = Ufork_sas.Api
module Uproc = Ufork_sas.Uproc
module Kernel = Ufork_sas.Kernel
module Monolithic = Ufork_baselines.Monolithic
module Vmclone = Ufork_baselines.Vmclone

let run_mono ?(image = Image.hello) ?config f =
  let os = Monolithic.boot ~cores:4 ?config () in
  let result = ref None in
  let _ = Monolithic.start os ~image (fun api -> result := Some (f os api)) in
  Monolithic.run os;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "process did not complete"

let run_vm ?(image = Image.hello) f =
  let os = Vmclone.boot ~cores:4 () in
  let result = ref None in
  let _ = Vmclone.start os ~image (fun api -> result := Some (f os api)) in
  Vmclone.run os;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "process did not complete"

(* --- Monolithic --- *)

let test_mono_same_va () =
  let same =
    run_mono (fun _os api ->
        let c = api.Api.malloc 32 in
        api.Api.write_u64 c ~off:0 5L;
        let out = ref false in
        ignore
          (api.Api.fork (fun capi ->
               (* No relocation in a multi-AS fork: identity. *)
               let mine = capi.Api.reloc c in
               out :=
                 Capability.base mine = Capability.base c
                 && capi.Api.read_u64 mine ~off:0 = 5L;
               capi.Api.exit 0));
        ignore (api.Api.wait ());
        !out)
  in
  Alcotest.(check bool) "same VA, reloc = identity" true same

let test_mono_cow_isolation () =
  let ok =
    run_mono (fun _os api ->
        let c = api.Api.malloc 64 in
        api.Api.write_bytes c ~off:0 (Bytes.of_string "original");
        ignore
          (api.Api.fork (fun capi ->
               let mine = capi.Api.reloc c in
               capi.Api.write_bytes mine ~off:0 (Bytes.of_string "CLOBBER!");
               let v = Bytes.to_string (capi.Api.read_bytes mine ~off:0 ~len:8) in
               capi.Api.exit (if v = "CLOBBER!" then 0 else 1)));
        let _, st = api.Api.wait () in
        st = 0
        && Bytes.to_string (api.Api.read_bytes c ~off:0 ~len:8) = "original")
  in
  Alcotest.(check bool) "classic CoW isolation" true ok

let test_mono_reads_never_copy () =
  let copies =
    run_mono (fun os api ->
        let c = api.Api.malloc (4 * 4096) in
        api.Api.write_bytes c ~off:0 (Bytes.make 64 'd');
        let m = Kernel.meter (Monolithic.kernel os) in
        let out = ref 0 in
        ignore
          (api.Api.fork (fun capi ->
               let before = Meter.get m "page_copy_cow" in
               let mine = capi.Api.reloc c in
               for i = 0 to 3 do
                 ignore (capi.Api.read_bytes mine ~off:(i * 4096) ~len:1)
               done;
               out := Meter.get m "page_copy_cow" - before;
               capi.Api.exit 0));
        ignore (api.Api.wait ());
        !out)
  in
  Alcotest.(check int) "CoW reads copy nothing" 0 copies

let test_mono_soft_faults_on_first_touch () =
  let softs =
    run_mono (fun os api ->
        let c = api.Api.malloc (4 * 4096) in
        api.Api.write_bytes c ~off:0 (Bytes.make 64 'd');
        let m = Kernel.meter (Monolithic.kernel os) in
        let out = ref 0 in
        ignore
          (api.Api.fork (fun capi ->
               let before = Meter.get m "soft_fault" in
               let mine = capi.Api.reloc c in
               for i = 0 to 3 do
                 ignore (capi.Api.read_bytes mine ~off:(i * 4096) ~len:1);
                 (* second touch must not fault again *)
                 ignore (capi.Api.read_bytes mine ~off:(i * 4096) ~len:1)
               done;
               out := Meter.get m "soft_fault" - before;
               capi.Api.exit 0));
        ignore (api.Api.wait ());
        !out)
  in
  Alcotest.(check int) "one soft fault per page" 4 softs

let big_heap = Image.make ~heap_bytes:(2 * 1024 * 1024) "bigheap"

let test_mono_arena_pretouch () =
  let pages =
    run_mono ~image:big_heap (fun os api ->
        let c = api.Api.malloc (64 * 4096) in
        (* Dirty the heap so there is something to re-dirty. *)
        for i = 0 to 63 do
          api.Api.write_bytes c ~off:(i * 4096) (Bytes.make 8 'x')
        done;
        let m = Kernel.meter (Monolithic.kernel os) in
        ignore
          (api.Api.fork (fun capi ->
               ignore (capi.Api.malloc 64);
               capi.Api.exit 0));
        ignore (api.Api.wait ());
        Meter.get m "arena_pretouch_pages")
  in
  (* cheribsd_default re-dirties 50% of the live heap. *)
  Alcotest.(check int) "half the arena re-dirtied" 32 pages

let test_mono_pretouch_once () =
  let ok =
    run_mono ~image:big_heap (fun os api ->
        let c = api.Api.malloc (16 * 4096) in
        for i = 0 to 15 do
          api.Api.write_bytes c ~off:(i * 4096) (Bytes.make 8 'x')
        done;
        let m = Kernel.meter (Monolithic.kernel os) in
        ignore
          (api.Api.fork (fun capi ->
               ignore (capi.Api.malloc 64);
               let after_first = Meter.get m "arena_pretouch_pages" in
               ignore (capi.Api.malloc 64);
               capi.Api.exit
                 (if Meter.get m "arena_pretouch_pages" = after_first then 0
                  else 1)));
        snd (api.Api.wait ()) = 0)
  in
  Alcotest.(check bool) "pretouch happens once" true ok

let test_mono_fork_latency_larger () =
  let mono =
    run_mono (fun os api ->
        ignore (api.Api.fork (fun capi -> capi.Api.exit 0));
        ignore (api.Api.wait ());
        Monolithic.last_fork_latency os)
  in
  Alcotest.(check bool) "monolithic fork > 100us" true
    (Ufork_util.Units.us_of_cycles mono > 100.)

let test_mono_nested_fork () =
  let ok =
    run_mono (fun _os api ->
        let c = api.Api.malloc 16 in
        api.Api.write_u64 c ~off:0 7L;
        ignore
          (api.Api.fork (fun capi ->
               ignore
                 (capi.Api.fork (fun gapi ->
                      let v = gapi.Api.read_u64 (gapi.Api.reloc c) ~off:0 in
                      gapi.Api.exit (if v = 7L then 0 else 1)));
               let _, st = capi.Api.wait () in
               capi.Api.exit st));
        snd (api.Api.wait ()) = 0)
  in
  Alcotest.(check bool) "grandchild CoW chain" true ok

(* --- Vmclone --- *)

let test_vm_image_includes_kernel () =
  let app = Image.hello in
  let vm = Vmclone.unikernel_image app in
  Alcotest.(check bool) "kernel text added" true
    (vm.Image.code_bytes > app.Image.code_bytes + 1_000_000)

let test_vm_fork_semantics () =
  let ok =
    run_vm (fun _os api ->
        let c = api.Api.malloc 64 in
        api.Api.write_bytes c ~off:0 (Bytes.of_string "vmstate!");
        ignore
          (api.Api.fork (fun capi ->
               let mine = capi.Api.reloc c in
               let v = Bytes.to_string (capi.Api.read_bytes mine ~off:0 ~len:8) in
               capi.Api.write_bytes mine ~off:0 (Bytes.of_string "CLOBBER!");
               capi.Api.exit (if v = "vmstate!" then 0 else 1)));
        let _, st = api.Api.wait () in
        st = 0
        && Bytes.to_string (api.Api.read_bytes c ~off:0 ~len:8) = "vmstate!")
  in
  Alcotest.(check bool) "clone duplicates state, isolates writes" true ok

let test_vm_fork_latency_dominated_by_domain () =
  let lat, domains =
    run_vm (fun os api ->
        ignore (api.Api.fork (fun capi -> capi.Api.exit 0));
        ignore (api.Api.wait ());
        ( Vmclone.last_fork_latency os,
          Meter.get (Kernel.meter (Vmclone.kernel os)) "domain_create" ))
  in
  Alcotest.(check int) "one domain" 1 domains;
  Alcotest.(check bool) "fork > 10 ms" true
    (Ufork_util.Units.ms_of_cycles lat > 10.)

let test_vm_child_memory_is_whole_image () =
  let mb =
    run_vm (fun os api ->
        let pid = api.Api.fork (fun capi -> capi.Api.exit 0) in
        ignore (api.Api.wait ());
        match Kernel.find_uproc (Vmclone.kernel os) pid with
        | Some u -> Ufork_util.Units.mb_of_bytes u.Uproc.private_bytes
        | None -> nan)
  in
  Alcotest.(check bool) "clone costs >1 MB" true (mb > 1.0 && mb < 3.0)

let suite =
  [
    ("mono same VA", `Quick, test_mono_same_va);
    ("mono CoW isolation", `Quick, test_mono_cow_isolation);
    ("mono reads never copy", `Quick, test_mono_reads_never_copy);
    ("mono soft faults", `Quick, test_mono_soft_faults_on_first_touch);
    ("mono arena pretouch", `Quick, test_mono_arena_pretouch);
    ("mono pretouch once", `Quick, test_mono_pretouch_once);
    ("mono fork latency", `Quick, test_mono_fork_latency_larger);
    ("mono nested fork", `Quick, test_mono_nested_fork);
    ("vm image includes kernel", `Quick, test_vm_image_includes_kernel);
    ("vm fork semantics", `Quick, test_vm_fork_semantics);
    ("vm domain cost", `Quick, test_vm_fork_latency_dominated_by_domain);
    ("vm child memory", `Quick, test_vm_child_memory_is_whole_image);
  ]
