(* Phase-attribution profiler: histogram properties (qcheck), span
   self/total accounting against the audit identity, the virtual-time
   sampler, and the export surfaces (folded stacks, Prometheus, CSV,
   JSONL header). *)

module Engine = Ufork_sim.Engine
module Costs = Ufork_sim.Costs
module Event = Ufork_sim.Event
module Trace = Ufork_sim.Trace
module Histogram = Ufork_sim.Histogram
module Image = Ufork_sas.Image
module Api = Ufork_sas.Api
module Kernel = Ufork_sas.Kernel
module Strategy = Ufork_core.Strategy
module Os = Ufork_core.Os
module System = Ufork_core.System
module Monolithic = Ufork_baselines.Monolithic
module Vmclone = Ufork_baselines.Vmclone
module Hello = Ufork_apps.Hello

(* {1 Histogram properties} *)

let of_values vs =
  let h = Histogram.create () in
  List.iter (fun v -> Histogram.record h (Int64.of_int v)) vs;
  h

(* The reference quantile: identical rank rule over the sorted multiset. *)
let reference_quantile vs p =
  let sorted = List.sort compare vs in
  let n = List.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (p *. float_of_int n)))) in
  Int64.of_int (List.nth sorted (rank - 1))

let values_gen = QCheck.(list_of_size Gen.(int_range 1 60) (int_bound 100_000))

let ps = [ 0.; 0.25; 0.5; 0.9; 0.99; 1. ]

let prop_quantile_monotone =
  QCheck.Test.make ~name:"histogram: quantile monotone in p" ~count:200
    values_gen (fun vs ->
      QCheck.assume (vs <> []);
      let h = of_values vs in
      let qs = List.map (Histogram.quantile h) ps in
      List.for_all2
        (fun a b -> Int64.compare a b <= 0)
        (List.filteri (fun i _ -> i < List.length qs - 1) qs)
        (List.tl qs))

let prop_bucket_contains =
  QCheck.Test.make ~name:"histogram: bucket bounds contain every value"
    ~count:200 values_gen (fun vs ->
      List.for_all
        (fun v ->
          let v = Int64.of_int v in
          let lo, hi = Histogram.bucket_bounds v in
          Int64.compare lo v <= 0 && Int64.compare v hi <= 0)
        vs)

let prop_quantile_vs_reference =
  QCheck.Test.make
    ~name:"histogram: quantile lands in the reference quantile's bucket"
    ~count:200 values_gen (fun vs ->
      QCheck.assume (vs <> []);
      let h = of_values vs in
      List.for_all
        (fun p ->
          let q = Histogram.quantile h p in
          let r = reference_quantile vs p in
          Histogram.bucket_bounds q = Histogram.bucket_bounds r)
        ps)

let hist_eq a b =
  Histogram.count a = Histogram.count b
  && Histogram.sum a = Histogram.sum b
  && Histogram.min_value a = Histogram.min_value b
  && Histogram.max_value a = Histogram.max_value b
  && Histogram.to_buckets a = Histogram.to_buckets b

let prop_merge_commutative =
  QCheck.Test.make ~name:"histogram: merge commutative" ~count:200
    QCheck.(pair values_gen values_gen)
    (fun (xs, ys) ->
      let a = of_values xs and b = of_values ys in
      hist_eq (Histogram.merge a b) (Histogram.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~name:"histogram: merge associative" ~count:200
    QCheck.(triple values_gen values_gen values_gen)
    (fun (xs, ys, zs) ->
      let a = of_values xs and b = of_values ys and c = of_values zs in
      hist_eq
        (Histogram.merge a (Histogram.merge b c))
        (Histogram.merge (Histogram.merge a b) c))

let prop_merge_vs_reference =
  QCheck.Test.make
    ~name:"histogram: merged quantiles match the pooled reference" ~count:200
    QCheck.(pair values_gen values_gen)
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] || ys <> []);
      let m = Histogram.merge (of_values xs) (of_values ys) in
      let pooled = xs @ ys in
      List.for_all
        (fun p ->
          Histogram.bucket_bounds (Histogram.quantile m p)
          = Histogram.bucket_bounds (reference_quantile pooled p))
        ps)

(* Merge edge cases the qcheck generators rarely land on: both sides
   empty, one side empty, and counts meeting in the top (2^63 .. max)
   bucket, where the bucket upper bound saturates at [Int64.max_int]. *)
let test_merge_edges () =
  let e1 = Histogram.create () and e2 = Histogram.create () in
  let m = Histogram.merge e1 e2 in
  Alcotest.(check bool) "empty+empty is empty" true (Histogram.is_empty m);
  Alcotest.(check int64) "empty+empty quantile" 0L (Histogram.quantile m 0.5);
  Alcotest.(check (list (triple int64 int64 int))) "empty+empty buckets" []
    (Histogram.to_buckets m);
  let h = of_values [ 3; 17; 4096 ] in
  Alcotest.(check bool) "empty is a left identity" true
    (hist_eq h (Histogram.merge (Histogram.create ()) h));
  Alcotest.(check bool) "empty is a right identity" true
    (hist_eq h (Histogram.merge h (Histogram.create ())));
  let below_top = Int64.add (Int64.shift_left 1L 61) 5L in
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a Int64.max_int;
  Histogram.record b below_top;
  Histogram.record b Int64.max_int;
  let m = Histogram.merge a b in
  Alcotest.(check int) "overflow-bucket count" 3 (Histogram.count m);
  Alcotest.(check int64) "overflow-bucket max" Int64.max_int
    (Histogram.max_value m);
  Alcotest.(check int64) "overflow-bucket min" below_top
    (Histogram.min_value m);
  Alcotest.(check int64) "overflow-bucket p100" Int64.max_int
    (Histogram.quantile m 1.);
  match List.rev (Histogram.to_buckets m) with
  | (lo, hi, n) :: _ ->
      (* The last reachable bucket: [2^62 .. max_int], its upper bound
         saturated rather than wrapped. *)
      Alcotest.(check int64) "top bucket lo" (Int64.shift_left 1L 62) lo;
      Alcotest.(check int64) "top bucket hi saturates" Int64.max_int hi;
      Alcotest.(check int) "top bucket holds both max values" 2 n
  | [] -> Alcotest.fail "no buckets after merge"

(* Betweenness: a pooled quantile can never leave the interval spanned
   by the two inputs' quantiles at the same p. Resolved at bucket
   granularity — that is the precision {!Histogram.quantile} promises
   (the raw value can read the shared bucket's upper bound, which may
   exceed one input's clamped answer). Empty inputs are fine: their
   quantile reads 0 and the merge equals the other side. *)
let prop_merge_quantile_between =
  QCheck.Test.make ~name:"histogram: merged quantile between the inputs'"
    ~count:200
    QCheck.(pair values_gen values_gen)
    (fun (xs, ys) ->
      let a = of_values xs and b = of_values ys in
      let m = Histogram.merge a b in
      let bucket q = fst (Histogram.bucket_bounds q) in
      List.for_all
        (fun p ->
          let qa = bucket (Histogram.quantile a p)
          and qb = bucket (Histogram.quantile b p)
          and qm = bucket (Histogram.quantile m p) in
          let lo = if Int64.compare qa qb <= 0 then qa else qb
          and hi = if Int64.compare qa qb <= 0 then qb else qa in
          Int64.compare lo qm <= 0 && Int64.compare qm hi <= 0)
        ps)

let test_histogram_exact () =
  let h = of_values [ 0; 1; 2; 3; 1000 ] in
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int64) "sum" 1006L (Histogram.sum h);
  Alcotest.(check int64) "min" 0L (Histogram.min_value h);
  Alcotest.(check int64) "max" 1000L (Histogram.max_value h);
  Alcotest.(check int64) "p0 = min" 0L (Histogram.quantile h 0.);
  Alcotest.(check int64) "p100 = max" 1000L (Histogram.quantile h 1.);
  let empty = Histogram.create () in
  Alcotest.(check bool) "empty" true (Histogram.is_empty empty);
  Alcotest.(check int64) "empty quantile" 0L (Histogram.quantile empty 0.5);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Histogram: negative value") (fun () ->
      Histogram.record h (-1L))

(* {1 Spans: attribution, nesting, the audit identity} *)

let span_self tr path =
  match
    List.find_opt
      (fun (st : Trace.span_total) -> st.Trace.span_path = path)
      (Trace.span_totals tr)
  with
  | Some st -> st.Trace.span_self
  | None -> Alcotest.failf "span %s missing" (String.concat ";" path)

(* Run [f] on a fresh single-thread engine so emissions are charged. *)
let on_engine costs f =
  let engine = Engine.create ~cores:1 () in
  let tr = Trace.create ~engine ~costs () in
  ignore (Engine.spawn ~name:"t" engine (fun () -> f tr));
  Engine.run engine;
  (tr, Engine.advanced engine)

let test_span_attribution () =
  let costs = Costs.ufork in
  let tr, elapsed =
    on_engine costs (fun tr ->
        Trace.emit tr (Event.Compute 10L);
        Trace.with_span tr ~name:"outer" (fun () ->
            Trace.emit tr (Event.Compute 100L);
            Trace.with_span tr ~name:"inner" (fun () ->
                Trace.emit tr (Event.Compute 7L));
            Trace.emit tr (Event.Compute 30L)))
  in
  Alcotest.(check int64) "unattributed" 10L
    (span_self tr [ "(unattributed)" ]);
  Alcotest.(check int64) "outer self" 130L (span_self tr [ "outer" ]);
  Alcotest.(check int64) "inner self" 7L (span_self tr [ "outer"; "inner" ]);
  (* The audit's span clause: self cycles partition total_charged. *)
  Trace.audit tr ~costs ~elapsed;
  (match
     List.find_opt
       (fun (st : Trace.span_total) -> st.Trace.span_path = [ "outer" ])
       (Trace.span_totals tr)
   with
  | Some st ->
      Alcotest.(check int64) "outer total = self + inner" 137L
        st.Trace.span_cycles;
      Alcotest.(check int) "outer closed once" 1 st.Trace.span_count
  | None -> Alcotest.fail "outer span missing");
  match Trace.span_histogram tr "inner" with
  | Some h ->
      Alcotest.(check int) "inner hist count" 1 (Histogram.count h);
      Alcotest.(check int64) "inner hist sum" 7L (Histogram.sum h)
  | None -> Alcotest.fail "inner histogram missing"

let test_span_exception_safety () =
  let costs = Costs.ufork in
  let tr, elapsed =
    on_engine costs (fun tr ->
        (try
           Trace.with_span tr ~name:"raising" (fun () ->
               Trace.emit tr (Event.Compute 5L);
               failwith "boom")
         with Failure _ -> ());
        Trace.emit tr (Event.Compute 3L))
  in
  Alcotest.(check int64) "raising self" 5L (span_self tr [ "raising" ]);
  Alcotest.(check int64) "post-raise unattributed" 3L
    (span_self tr [ "(unattributed)" ]);
  Trace.audit tr ~costs ~elapsed

let test_folded_stacks () =
  let tr, _ =
    on_engine Costs.ufork (fun tr ->
        Trace.with_span tr ~name:"a" (fun () ->
            Trace.with_span tr ~name:"b" (fun () ->
                Trace.emit tr (Event.Compute 42L))))
  in
  let folded = Trace.folded_stacks tr in
  Alcotest.(check bool) "a;b line present" true
    (String.length folded > 0
    && List.mem "a;b 42" (String.split_on_char '\n' folded));
  let prom = Trace.to_prometheus_string tr in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prometheus has span self" true
    (contains prom "ufork_span_self_cycles{span=\"a;b\"} 42")

let test_sampler () =
  let ticks = ref 0 in
  let tr, _ =
    on_engine Costs.ufork (fun tr ->
        Trace.set_sampler tr ~interval:100L (fun () ->
            incr ticks;
            [ ("g", !ticks) ]);
        for _ = 1 to 10 do
          Trace.emit tr (Event.Compute 60L)
        done)
  in
  let samples = Trace.samples tr in
  (* 600 cycles of emission at a 100-cycle interval: at least 4 samples
     (exact count depends on emission alignment), strictly increasing
     timestamps, at most one sample per interval window. A sample fires
     at the first emit at-or-after its grid point, so two consecutive
     samples can be closer than [interval] in absolute cycles — the
     invariant is that they land in distinct windows. *)
  Alcotest.(check bool) "several samples" true (List.length samples >= 4);
  let rec distinct_windows = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
        Int64.compare t2 t1 > 0
        && Int64.compare (Int64.div t2 100L) (Int64.div t1 100L) > 0
        && distinct_windows rest
    | _ -> true
  in
  Alcotest.(check bool) "one sample per window" true
    (distinct_windows samples);
  let csv = Trace.samples_csv tr in
  (match String.split_on_char '\n' csv with
  | header :: _ -> Alcotest.(check string) "csv header" "cycles,g" header
  | [] -> Alcotest.fail "empty csv")

let test_jsonl_header () =
  let engine = Engine.create ~cores:1 () in
  let tr = Trace.create ~engine ~costs:Costs.ufork ~ring_capacity:4 () in
  Trace.set_recording tr true;
  for _ = 1 to 10 do
    Trace.emit tr Event.Malloc
  done;
  Alcotest.(check int) "dropped" 6 (Trace.dropped tr);
  match String.split_on_char '\n' (Trace.to_jsonl_string tr) with
  | header :: body ->
      Alcotest.(check string) "header line"
        "{\"header\":{\"records\":4,\"dropped\":6}}" header;
      (* The header's record count is the number of record lines that
         follow: line-counting consumers need no scan. *)
      Alcotest.(check int) "body matches header" 4
        (List.length (List.filter (fun l -> l <> "") body))
  | [] -> Alcotest.fail "no header"

let test_ring_drops_oldest () =
  (* Overflow evicts from the front: after 10 distinguishable emissions
     on a 4-record ring, the survivors are the 4 newest, oldest first. *)
  let engine = Engine.create ~cores:1 () in
  let tr = Trace.create ~engine ~costs:Costs.ufork ~ring_capacity:4 () in
  Trace.set_recording tr true;
  for i = 1 to 10 do
    Trace.emit tr (Event.Copy_bytes i)
  done;
  Alcotest.(check (list int)) "newest survive, in order" [ 7; 8; 9; 10 ]
    (List.map
       (fun (r : Trace.record) ->
         match r.Trace.event with Event.Copy_bytes n -> n | _ -> -1)
       (Trace.records tr))

(* {1 Whole-system: every flavour's run satisfies the span clause and
   feeds the fork histogram} *)

let boot_sys = function
  | "ufork-copa" ->
      Os.system (Os.boot ~cores:4 ~strategy:Strategy.Copa ())
  | "cheribsd" -> Monolithic.system (Monolithic.boot ~cores:4 ())
  | "nephele" -> Vmclone.system (Vmclone.boot ~cores:4 ())
  | s -> invalid_arg s

(* Strict exposition-format grammar over a real run's export: every
   line is # HELP, # TYPE, or a sample; each family announces HELP then
   TYPE (in that order, once) before any of its samples; histogram
   families own their _bucket/_sum/_count sample names; sample values
   parse as numbers. A scrape of the hello workload exercises all five
   families. *)
let test_prometheus_grammar () =
  let sys = boot_sys "ufork-copa" in
  ignore
    (System.start sys ~image:Image.hello (fun api ->
         ignore (Hello.fork_once api);
         Hello.reap api));
  System.run sys;
  let prom = Trace.to_prometheus_string (System.trace sys) in
  let lines = String.split_on_char '\n' prom in
  (match List.rev lines with
  | "" :: _ -> ()
  | _ -> Alcotest.fail "export must end in a newline");
  let lines = List.filter (fun l -> l <> "") lines in
  let helped = Hashtbl.create 8 and typed = Hashtbl.create 8 in
  let prefix p s =
    String.length s >= String.length p
    && String.sub s 0 (String.length p) = p
  in
  let words s = String.split_on_char ' ' s in
  (* A sample's family: its metric name, except that a histogram TYPE
     declaration also claims the name_bucket/_sum/_count series. *)
  let family_of_sample name =
    let strip suf =
      let ls = String.length suf and ln = String.length name in
      if ln > ls && String.sub name (ln - ls) ls = suf then
        Some (String.sub name 0 (ln - ls))
      else None
    in
    let histo f =
      match Hashtbl.find_opt typed f with Some "histogram" -> Some f | _ -> None
    in
    match List.find_map
            (fun suf -> Option.bind (strip suf) histo)
            [ "_bucket"; "_sum"; "_count" ]
    with
    | Some f -> f
    | None -> name
  in
  List.iter
    (fun line ->
      if prefix "# HELP " line then (
        match words line with
        | "#" :: "HELP" :: fam :: (_ :: _ as text) ->
            Alcotest.(check bool)
              (Printf.sprintf "HELP %s only once" fam)
              false (Hashtbl.mem helped fam);
            Alcotest.(check bool)
              (Printf.sprintf "HELP %s before TYPE" fam)
              false (Hashtbl.mem typed fam);
            Alcotest.(check bool) "HELP text non-empty" true
              (String.trim (String.concat " " text) <> "");
            Hashtbl.replace helped fam ()
        | _ -> Alcotest.failf "malformed HELP line %S" line)
      else if prefix "# TYPE " line then (
        match words line with
        | [ "#"; "TYPE"; fam; kind ] ->
            Alcotest.(check bool)
              (Printf.sprintf "TYPE %s only once" fam)
              false (Hashtbl.mem typed fam);
            Alcotest.(check bool)
              (Printf.sprintf "TYPE %s follows its HELP" fam)
              true (Hashtbl.mem helped fam);
            Alcotest.(check bool)
              (Printf.sprintf "TYPE %s kind %s" fam kind)
              true
              (List.mem kind [ "counter"; "gauge"; "histogram" ]);
            Hashtbl.replace typed fam kind
        | _ -> Alcotest.failf "malformed TYPE line %S" line)
      else if prefix "#" line then Alcotest.failf "stray comment %S" line
      else
        match words line with
        | [ metric; value ] ->
            let name =
              match String.index_opt metric '{' with
              | Some i ->
                  Alcotest.(check bool)
                    (Printf.sprintf "labels close on %S" metric)
                    true
                    (metric.[String.length metric - 1] = '}');
                  String.sub metric 0 i
              | None -> metric
            in
            let fam = family_of_sample name in
            Alcotest.(check bool)
              (Printf.sprintf "sample %s after its TYPE" name)
              true (Hashtbl.mem typed fam);
            Alcotest.(check bool)
              (Printf.sprintf "value %S parses" value)
              true
              (Option.is_some (float_of_string_opt value))
        | _ -> Alcotest.failf "malformed sample line %S" line)
    lines;
  List.iter
    (fun (fam, kind) ->
      Alcotest.(check (option string))
        (Printf.sprintf "family %s declared" fam)
        (Some kind) (Hashtbl.find_opt typed fam))
    [
      ("ufork_cycles_total", "counter");
      ("ufork_trace_dropped_records", "gauge");
      ("ufork_meter", "counter");
      ("ufork_span_self_cycles", "counter");
      ("ufork_span_cycles", "histogram");
    ];
  Alcotest.(check int) "exactly the five families" 5 (Hashtbl.length typed)

let test_system_profile label () =
  let sys = boot_sys label in
  ignore
    (System.start sys ~image:Image.hello (fun api ->
         ignore (Hello.fork_once api);
         Hello.reap api));
  System.run sys;
  let tr = System.trace sys in
  (* The audit (span clause included) must pass... *)
  Trace.audit tr
    ~costs:(Kernel.costs (System.kernel sys))
    ~elapsed:(Engine.advanced (System.engine sys));
  (* ...the flamegraph must attribute something... *)
  Alcotest.(check bool) "folded stacks non-empty" true
    (String.length (Trace.folded_stacks tr) > 0);
  (* ...and exactly one fork span must have closed, with its duration
     histogram agreeing with the fork-latency gauge. *)
  match Trace.span_histogram tr "fork" with
  | Some h ->
      Alcotest.(check int) "one fork" 1 (Histogram.count h);
      Alcotest.(check int64) "fork histogram = latency gauge"
        (Trace.last_fork_latency tr) (Histogram.sum h)
  | None -> Alcotest.fail "no fork histogram"

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    qt prop_quantile_monotone;
    qt prop_bucket_contains;
    qt prop_quantile_vs_reference;
    qt prop_merge_commutative;
    qt prop_merge_associative;
    qt prop_merge_vs_reference;
    qt prop_merge_quantile_between;
    Alcotest.test_case "histogram merge edge cases" `Quick test_merge_edges;
    Alcotest.test_case "histogram exact stats" `Quick test_histogram_exact;
    Alcotest.test_case "prometheus line grammar" `Quick
      test_prometheus_grammar;
    Alcotest.test_case "span attribution + audit" `Quick test_span_attribution;
    Alcotest.test_case "span exception safety" `Quick
      test_span_exception_safety;
    Alcotest.test_case "folded stacks + prometheus" `Quick test_folded_stacks;
    Alcotest.test_case "virtual-time sampler" `Quick test_sampler;
    Alcotest.test_case "jsonl header reflects drops" `Quick test_jsonl_header;
    Alcotest.test_case "ring overflow drops oldest" `Quick
      test_ring_drops_oldest;
    Alcotest.test_case "profile: hello on ufork-copa" `Quick
      (test_system_profile "ufork-copa");
    Alcotest.test_case "profile: hello on cheribsd" `Quick
      (test_system_profile "cheribsd");
    Alcotest.test_case "profile: hello on nephele" `Quick
      (test_system_profile "nephele");
  ]
