(* Tests for the OS construction kit: allocator, pipes, VFS, fd tables,
   process layout, and kernel services (exercised through a booted μFork
   system where a process context is needed). *)

module Addr = Ufork_mem.Addr
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Tinyalloc = Ufork_sas.Tinyalloc
module Pipe = Ufork_sas.Pipe
module Vfs = Ufork_sas.Vfs
module Fdesc = Ufork_sas.Fdesc
module Uproc = Ufork_sas.Uproc
module Kernel = Ufork_sas.Kernel
module Api = Ufork_sas.Api
module Capability = Ufork_cheri.Capability
module Os = Ufork_core.Os

(* Run a single-process scenario on a freshly booted μFork OS and return
   its result. *)
let in_proc ?(image = Image.hello) ?config f =
  let os = Os.boot ~cores:2 ?config () in
  let result = ref None in
  let _ = Os.start os ~image (fun api -> result := Some (f api)) in
  Os.run os;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "process did not complete"

(* --- Config --- *)

let test_config_presets () =
  Alcotest.(check bool) "ufork_fast has no toctou" false
    Config.ufork_fast.Config.toctou;
  Alcotest.(check bool) "default has toctou" true
    Config.ufork_default.Config.toctou;
  let c = Config.with_isolation Config.No_isolation Config.ufork_default in
  Alcotest.(check bool) "with_isolation" true
    (c.Config.isolation = Config.No_isolation)

(* --- Image / regions --- *)

let test_image_layout () =
  let img = Image.hello in
  let r = Uproc.layout_regions img ~area_base:0x100000 in
  (* Regions are disjoint and ordered. *)
  Alcotest.(check bool) "ordered" true
    (r.Uproc.got_base < r.Uproc.code_base
    && r.Uproc.code_base + r.Uproc.code_bytes <= r.Uproc.data_base
    && r.Uproc.data_base + r.Uproc.data_bytes <= r.Uproc.stack_base
    && r.Uproc.stack_base + r.Uproc.stack_bytes <= r.Uproc.meta_base
    && r.Uproc.meta_base + r.Uproc.meta_bytes <= r.Uproc.heap_base);
  Alcotest.(check bool) "fits in area" true
    (r.Uproc.heap_base + r.Uproc.heap_bytes
    <= 0x100000 + Image.area_bytes img);
  Alcotest.(check bool) "page aligned" true
    (List.for_all
       (fun v -> v mod Addr.page_size = 0)
       [ r.Uproc.got_base; r.Uproc.code_base; r.Uproc.data_base;
         r.Uproc.stack_base; r.Uproc.meta_base; r.Uproc.heap_base ])

let test_image_validation () =
  Alcotest.check_raises "bad size"
    (Invalid_argument "Image.make: non-positive region") (fun () ->
      ignore (Image.make ~code_bytes:0 "bad"))

let test_region_of_addr () =
  let img = Image.hello in
  let area_base = 0x200000 in
  let r = Uproc.layout_regions img ~area_base in
  let phys = Ufork_mem.Phys.create () in
  let pt = Ufork_mem.Page_table.create phys in
  let u = Uproc.create ~pid:1 ~image:img ~area_base ~pt () in
  Alcotest.(check (option string)) "got" (Some "got")
    (Uproc.region_of_addr u r.Uproc.got_base);
  Alcotest.(check (option string)) "heap" (Some "heap")
    (Uproc.region_of_addr u (r.Uproc.heap_base + 100));
  Alcotest.(check (option string)) "guard gap" None
    (Uproc.region_of_addr u (r.Uproc.got_base + r.Uproc.got_bytes));
  Alcotest.(check bool) "contains" true (Uproc.contains u (area_base + 1))

(* --- Tinyalloc --- *)

let mk_alloc ?(heap_size = 1024 * 1024) () =
  Tinyalloc.create ~heap_base:0x10000 ~heap_size ~meta_capacity_granules:4096

let test_alloc_basic () =
  let a = mk_alloc () in
  let b1 = Tinyalloc.alloc a 100 in
  Alcotest.(check int) "aligned size" 112 b1.Tinyalloc.size;
  Alcotest.(check bool) "aligned addr" true
    (Addr.is_granule_aligned b1.Tinyalloc.addr);
  let b2 = Tinyalloc.alloc a 16 in
  Alcotest.(check bool) "no overlap" true
    (b2.Tinyalloc.addr >= b1.Tinyalloc.addr + b1.Tinyalloc.size);
  Alcotest.(check int) "used" (112 + 16) (Tinyalloc.used_bytes a);
  Alcotest.(check int) "live" 2 (Tinyalloc.live_blocks a)

let test_alloc_free_reuse () =
  let a = mk_alloc () in
  let b1 = Tinyalloc.alloc a 64 in
  let _b2 = Tinyalloc.alloc a 64 in
  let freed = Tinyalloc.free a b1.Tinyalloc.addr in
  Alcotest.(check int) "freed size" 64 freed.Tinyalloc.size;
  let b3 = Tinyalloc.alloc a 64 in
  Alcotest.(check int) "first fit reuses" b1.Tinyalloc.addr b3.Tinyalloc.addr

let test_alloc_coalescing () =
  let a = mk_alloc ~heap_size:(64 * 3) () in
  let b1 = Tinyalloc.alloc a 64 in
  let b2 = Tinyalloc.alloc a 64 in
  let b3 = Tinyalloc.alloc a 64 in
  (* Heap is full now. *)
  Alcotest.check_raises "full" Tinyalloc.Out_of_heap (fun () ->
      ignore (Tinyalloc.alloc a 16));
  ignore (Tinyalloc.free a b1.Tinyalloc.addr);
  ignore (Tinyalloc.free a b3.Tinyalloc.addr);
  ignore (Tinyalloc.free a b2.Tinyalloc.addr);
  (* All three coalesce back into one span. *)
  let big = Tinyalloc.alloc a (64 * 3) in
  Alcotest.(check int) "coalesced" b1.Tinyalloc.addr big.Tinyalloc.addr

let test_alloc_bad_free () =
  let a = mk_alloc () in
  let b = Tinyalloc.alloc a 64 in
  Alcotest.check_raises "bad free"
    (Invalid_argument "Tinyalloc.free: not a live block start") (fun () ->
      ignore (Tinyalloc.free a (b.Tinyalloc.addr + 16)))

let test_alloc_clone () =
  let a = mk_alloc () in
  let b1 = Tinyalloc.alloc a 64 in
  let c = Tinyalloc.clone a ~delta:0x100000 in
  Alcotest.(check int) "base shifted" (0x10000 + 0x100000) (Tinyalloc.heap_base c);
  Alcotest.(check int) "used preserved" (Tinyalloc.used_bytes a)
    (Tinyalloc.used_bytes c);
  (* The clone can free the shifted block. *)
  let freed = Tinyalloc.free c (b1.Tinyalloc.addr + 0x100000) in
  Alcotest.(check int) "meta index preserved" b1.Tinyalloc.meta_index
    freed.Tinyalloc.meta_index;
  (* And the original is untouched. *)
  Alcotest.(check int) "original live" 1 (Tinyalloc.live_blocks a)

let test_alloc_meta_exhaustion () =
  let a =
    Tinyalloc.create ~heap_base:0x10000 ~heap_size:(1024 * 1024)
      ~meta_capacity_granules:2
  in
  ignore (Tinyalloc.alloc a 16);
  ignore (Tinyalloc.alloc a 16);
  Alcotest.check_raises "meta exhausted" Tinyalloc.Out_of_heap (fun () ->
      ignore (Tinyalloc.alloc a 16))

let test_block_of_addr () =
  let a = mk_alloc () in
  let b = Tinyalloc.alloc a 64 in
  (match Tinyalloc.block_of_addr a (b.Tinyalloc.addr + 10) with
  | Some found -> Alcotest.(check int) "found" b.Tinyalloc.addr found.Tinyalloc.addr
  | None -> Alcotest.fail "not found");
  Alcotest.(check bool) "miss" true
    (Tinyalloc.block_of_addr a (b.Tinyalloc.addr + 64) = None)

let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"allocations never overlap" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (int_range 1 2048))
    (fun sizes ->
      let a = mk_alloc () in
      let blocks = List.map (fun s -> Tinyalloc.alloc a s) sizes in
      let sorted =
        List.sort (fun x y -> compare x.Tinyalloc.addr y.Tinyalloc.addr) blocks
      in
      let rec disjoint = function
        | b1 :: (b2 :: _ as rest) ->
            b1.Tinyalloc.addr + b1.Tinyalloc.size <= b2.Tinyalloc.addr
            && disjoint rest
        | _ -> true
      in
      disjoint sorted)

let prop_alloc_free_all_restores =
  QCheck.Test.make ~name:"freeing all restores full heap" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 1 1024))
    (fun sizes ->
      let a = mk_alloc ~heap_size:(128 * 1024) () in
      match List.map (fun s -> Tinyalloc.alloc a s) sizes with
      | exception Tinyalloc.Out_of_heap -> QCheck.assume_fail ()
      | blocks ->
          List.iter (fun b -> ignore (Tinyalloc.free a b.Tinyalloc.addr)) blocks;
          Tinyalloc.used_bytes a = 0
          &&
          (* One maximal allocation succeeds again. *)
          let big = Tinyalloc.alloc a (128 * 1024) in
          big.Tinyalloc.addr = 0x10000)

(* --- Pipe --- *)

let test_pipe_fifo () =
  let p = Pipe.create ~capacity:8 () in
  (match Pipe.try_write p (Bytes.of_string "abcde") with
  | Pipe.Wrote 5 -> ()
  | _ -> Alcotest.fail "write");
  (match Pipe.try_read p 3 with
  | Pipe.Data b -> Alcotest.(check string) "fifo order" "abc" (Bytes.to_string b)
  | _ -> Alcotest.fail "read");
  match Pipe.try_read p 10 with
  | Pipe.Data b -> Alcotest.(check string) "rest" "de" (Bytes.to_string b)
  | _ -> Alcotest.fail "read rest"

let test_pipe_capacity () =
  let p = Pipe.create ~capacity:4 () in
  (match Pipe.try_write p (Bytes.of_string "abcdef") with
  | Pipe.Wrote 4 -> ()
  | _ -> Alcotest.fail "partial write");
  match Pipe.try_write p (Bytes.of_string "x") with
  | Pipe.Would_block -> ()
  | _ -> Alcotest.fail "should block"

let test_pipe_eof_and_epipe () =
  let p = Pipe.create () in
  ignore (Pipe.try_write p (Bytes.of_string "z"));
  Pipe.close_write p;
  (match Pipe.try_read p 10 with
  | Pipe.Data b -> Alcotest.(check string) "drains" "z" (Bytes.to_string b)
  | _ -> Alcotest.fail "drain");
  (match Pipe.try_read p 10 with
  | Pipe.Eof -> ()
  | _ -> Alcotest.fail "eof");
  let q = Pipe.create () in
  Pipe.close_read q;
  Alcotest.check_raises "epipe" Pipe.Broken_pipe (fun () ->
      ignore (Pipe.try_write q (Bytes.of_string "x")))

let test_pipe_empty () =
  let p = Pipe.create () in
  match Pipe.try_read p 1 with
  | Pipe.Empty -> ()
  | _ -> Alcotest.fail "empty"

(* --- Vfs --- *)

let test_vfs_crud () =
  let v = Vfs.create () in
  Vfs.put v "/a" "hello";
  Alcotest.(check bool) "exists" true (Vfs.exists v "/a");
  Alcotest.(check int) "size" 5 (Vfs.size v "/a");
  Alcotest.(check string) "contents" "hello" (Vfs.contents v "/a");
  Vfs.rename v ~src:"/a" ~dst:"/b";
  Alcotest.(check bool) "renamed away" false (Vfs.exists v "/a");
  Alcotest.(check string) "renamed" "hello" (Vfs.contents v "/b");
  Vfs.unlink v "/b";
  Alcotest.(check (list string)) "empty" [] (Vfs.list v);
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Vfs.contents v "/b"))

let test_vfs_streaming () =
  let v = Vfs.create () in
  let f = Vfs.open_ v "/f" `Create in
  ignore (Vfs.write f (Bytes.of_string "01234"));
  ignore (Vfs.write f (Bytes.of_string "56789"));
  Vfs.seek f 3;
  Alcotest.(check string) "seek+read" "3456" (Bytes.to_string (Vfs.read f 4));
  Alcotest.(check string) "short at eof" "789" (Bytes.to_string (Vfs.read f 10));
  Alcotest.(check int) "size_of" 10 (Vfs.size_of f);
  Vfs.close f;
  Alcotest.check_raises "closed" (Invalid_argument "Vfs: file is closed")
    (fun () -> ignore (Vfs.read f 1))

let test_vfs_append_grows () =
  let v = Vfs.create () in
  Vfs.put v "/log" "aa";
  let f = Vfs.open_ v "/log" `Append in
  ignore (Vfs.write f (Bytes.of_string "bb"));
  Vfs.close f;
  Alcotest.(check string) "appended" "aabb" (Vfs.contents v "/log");
  (* Large writes trigger buffer growth. *)
  let g = Vfs.open_ v "/big" `Create in
  ignore (Vfs.write g (Bytes.make 10_000 'x'));
  Vfs.close g;
  Alcotest.(check int) "grown" 10_000 (Vfs.size v "/big")

(* --- Fdtable --- *)

let test_fdtable_alloc_order () =
  let t = Fdesc.Fdtable.create () in
  Alcotest.(check int) "stdio reserved" 3 (Fdesc.Fdtable.alloc t Fdesc.Null);
  Alcotest.(check int) "next" 4 (Fdesc.Fdtable.alloc t Fdesc.Null);
  Fdesc.Fdtable.close t 3;
  Alcotest.(check int) "lowest free reused" 3 (Fdesc.Fdtable.alloc t Fdesc.Null)

let test_fdtable_dup_shares_pipe () =
  let t = Fdesc.Fdtable.create () in
  let p = Pipe.create () in
  let rfd = Fdesc.Fdtable.alloc t (Fdesc.Pipe_read p) in
  let t' = Fdesc.Fdtable.dup_all t in
  (* Closing one copy does not close the pipe end... *)
  Fdesc.Fdtable.close t rfd;
  Alcotest.(check bool) "still open" true (Pipe.read_open p);
  (* ...closing the last one does. *)
  Fdesc.Fdtable.close t' rfd;
  Alcotest.(check bool) "closed" false (Pipe.read_open p)

let test_fdtable_close_all () =
  let t = Fdesc.Fdtable.create () in
  let p = Pipe.create () in
  ignore (Fdesc.Fdtable.alloc t (Fdesc.Pipe_write p));
  Fdesc.Fdtable.close_all t;
  Alcotest.(check int) "empty" 0 (Fdesc.Fdtable.open_count t);
  Alcotest.(check bool) "pipe write closed" false (Pipe.write_open p)

let test_fdtable_bad_fd () =
  let t = Fdesc.Fdtable.create () in
  Alcotest.check_raises "get" Not_found (fun () ->
      ignore (Fdesc.Fdtable.get t 99));
  Alcotest.check_raises "close" Not_found (fun () -> Fdesc.Fdtable.close t 99)

(* --- Kernel services through the API --- *)

let test_malloc_bounds () =
  let ok =
    in_proc (fun api ->
        let c = api.Api.malloc 100 in
        Capability.length c >= 100
        && Capability.tag c
        && not (Ufork_cheri.Perms.has (Capability.perms c) Ufork_cheri.Perms.system))
  in
  Alcotest.(check bool) "bounded user cap" true ok

let test_malloc_oob_access () =
  let violated =
    in_proc (fun api ->
        let c = api.Api.malloc 32 in
        match api.Api.read_bytes c ~off:0 ~len:64 with
        | exception Capability.Violation _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "capability stops overread" true violated

let test_malloc_enomem () =
  let raised =
    in_proc (fun api ->
        match api.Api.malloc (512 * 1024 * 1024) with
        | exception Api.Sys_error e -> String.length e > 0
        | _ -> false)
  in
  Alcotest.(check bool) "ENOMEM" true raised

let test_free_and_reuse () =
  let same =
    in_proc (fun api ->
        let c1 = api.Api.malloc 64 in
        api.Api.free c1;
        let c2 = api.Api.malloc 64 in
        Capability.base c1 = Capability.base c2)
  in
  Alcotest.(check bool) "free returns memory" true same

let test_malloc_recycled_memory_is_tag_free () =
  (* Heap temporal safety: a freed block containing valid capabilities
     must come back from malloc with every tag cleared — otherwise stale
     authority would leak to the next owner (this exact hazard corrupted
     the kvstore's rehashed bucket array before the allocator cleared
     tags, caught by the cross-system property test). *)
  let ok =
    in_proc (fun api ->
        let a = api.Api.malloc 64 in
        let target = api.Api.malloc 16 in
        api.Api.store_cap a ~off:0 target;
        api.Api.store_cap a ~off:48 target;
        api.Api.free a;
        let b = api.Api.malloc 64 in
        (* First-fit hands back the same memory... *)
        Capability.base b = Capability.base a
        (* ...with no stale capabilities inside. *)
        && (not (Capability.tag (api.Api.load_cap b ~off:0)))
        && not (Capability.tag (api.Api.load_cap b ~off:48)))
  in
  Alcotest.(check bool) "recycled memory is tag-free" true ok

let test_got_roundtrip () =
  let ok =
    in_proc (fun api ->
        let c = api.Api.malloc 16 in
        api.Api.got_set 3 c;
        Capability.equal (api.Api.got_get 3) c)
  in
  Alcotest.(check bool) "GOT roundtrip" true ok

let test_got_slot_range () =
  let raised =
    in_proc (fun api ->
        match api.Api.got_set 100000 (api.Api.malloc 16) with
        | exception Invalid_argument _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "GOT slot bound" true raised

let test_file_syscalls () =
  let contents =
    in_proc (fun api ->
        let fd = api.Api.open_ "/t" `Create in
        ignore (api.Api.write fd (Bytes.of_string "data1"));
        api.Api.close fd;
        let fd = api.Api.open_ "/t" `Read in
        let b = api.Api.read fd 5 in
        api.Api.close fd;
        api.Api.rename ~src:"/t" ~dst:"/t2";
        Bytes.to_string b)
  in
  Alcotest.(check string) "file roundtrip" "data1" contents

let test_pread () =
  let s =
    in_proc (fun api ->
        let fd = api.Api.open_ "/p" `Create in
        ignore (api.Api.write fd (Bytes.of_string "0123456789"));
        let b = api.Api.pread fd ~off:4 3 in
        Bytes.to_string b)
  in
  Alcotest.(check string) "pread" "456" s

let test_bad_fd () =
  let msg =
    in_proc (fun api ->
        match api.Api.read 42 1 with
        | exception Api.Sys_error e -> e
        | _ -> "")
  in
  Alcotest.(check string) "EBADF" "EBADF" msg

let test_pipe_through_api () =
  let got =
    in_proc (fun api ->
        let rfd, wfd = api.Api.pipe () in
        ignore (api.Api.write wfd (Bytes.of_string "ping"));
        Bytes.to_string (api.Api.read rfd 4))
  in
  Alcotest.(check string) "pipe" "ping" got

let test_wait_echild () =
  let raised =
    in_proc (fun api ->
        match api.Api.wait () with
        | exception Api.Sys_error e -> e
        | _ -> "")
  in
  Alcotest.(check string) "ECHILD" "ECHILD" raised

let test_time_advances () =
  let d =
    in_proc (fun api ->
        let t0 = api.Api.now () in
        api.Api.compute 1234L;
        Int64.sub (api.Api.now ()) t0)
  in
  Alcotest.(check int64) "compute advances clock" 1234L d

let test_demand_zero_heap () =
  (* Writing into an allocated block that spans unmaterialized pages works
     (pages appear on demand and read back zero). *)
  let ok =
    in_proc (fun api ->
        let c = api.Api.malloc (3 * 4096) in
        api.Api.write_u64 c ~off:(2 * 4096) 9L;
        api.Api.read_u64 c ~off:(2 * 4096) = 9L
        && api.Api.read_u64 c ~off:4096 = 0L)
  in
  Alcotest.(check bool) "demand zero" true ok

let test_no_isolation_wide_caps () =
  let wide =
    in_proc
      ~config:(Config.with_isolation Config.No_isolation Config.ufork_fast)
      (fun api ->
        let c = api.Api.malloc 16 in
        Capability.length c > 1_000_000_000)
  in
  Alcotest.(check bool) "no-isolation caps are wide" true wide

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    ("config presets", `Quick, test_config_presets);
    ("image layout", `Quick, test_image_layout);
    ("image validation", `Quick, test_image_validation);
    ("region of addr", `Quick, test_region_of_addr);
    ("alloc basic", `Quick, test_alloc_basic);
    ("alloc free/reuse", `Quick, test_alloc_free_reuse);
    ("alloc coalescing", `Quick, test_alloc_coalescing);
    ("alloc bad free", `Quick, test_alloc_bad_free);
    ("alloc clone", `Quick, test_alloc_clone);
    ("alloc meta exhaustion", `Quick, test_alloc_meta_exhaustion);
    ("block_of_addr", `Quick, test_block_of_addr);
    ("pipe fifo", `Quick, test_pipe_fifo);
    ("pipe capacity", `Quick, test_pipe_capacity);
    ("pipe eof/epipe", `Quick, test_pipe_eof_and_epipe);
    ("pipe empty", `Quick, test_pipe_empty);
    ("vfs crud", `Quick, test_vfs_crud);
    ("vfs streaming", `Quick, test_vfs_streaming);
    ("vfs append/grow", `Quick, test_vfs_append_grows);
    ("fdtable alloc order", `Quick, test_fdtable_alloc_order);
    ("fdtable dup shares", `Quick, test_fdtable_dup_shares_pipe);
    ("fdtable close_all", `Quick, test_fdtable_close_all);
    ("fdtable bad fd", `Quick, test_fdtable_bad_fd);
    ("malloc bounds", `Quick, test_malloc_bounds);
    ("malloc oob access", `Quick, test_malloc_oob_access);
    ("malloc enomem", `Quick, test_malloc_enomem);
    ("free and reuse", `Quick, test_free_and_reuse);
    ("malloc recycled tag-free", `Quick, test_malloc_recycled_memory_is_tag_free);
    ("got roundtrip", `Quick, test_got_roundtrip);
    ("got slot range", `Quick, test_got_slot_range);
    ("file syscalls", `Quick, test_file_syscalls);
    ("pread", `Quick, test_pread);
    ("bad fd", `Quick, test_bad_fd);
    ("pipe via api", `Quick, test_pipe_through_api);
    ("wait ECHILD", `Quick, test_wait_echild);
    ("time advances", `Quick, test_time_advances);
    ("demand zero heap", `Quick, test_demand_zero_heap);
    ("no isolation wide caps", `Quick, test_no_isolation_wide_caps);
    qt prop_alloc_no_overlap;
    qt prop_alloc_free_all_restores;
  ]
