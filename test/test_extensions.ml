(* Tests for the paper's discussion/future-work features implemented as
   extensions: shared memory (§3.7), ASLR (§3.7), posix_spawn (§2.3),
   SIGKILL delivery (§4.5), and the sealed syscall-entry capability
   (§4.2/§4.4). *)

module Addr = Ufork_mem.Addr
module Pte = Ufork_mem.Pte
module Page_table = Ufork_mem.Page_table
module Capability = Ufork_cheri.Capability
module Perms = Ufork_cheri.Perms
module Meter = Ufork_sim.Meter
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Api = Ufork_sas.Api
module Uproc = Ufork_sas.Uproc
module Kernel = Ufork_sas.Kernel
module Strategy = Ufork_core.Strategy
module Os = Ufork_core.Os
module Monolithic = Ufork_baselines.Monolithic

let run_os ?(cores = 4) ?(strategy = Strategy.Copa) ?config
    ?(image = Image.hello) f =
  let os = Os.boot ~cores ?config ~strategy () in
  let result = ref None in
  let _ = Os.start os ~image (fun api -> result := Some (f os api)) in
  Os.run os;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "init process did not complete"

(* --- Shared memory --- *)

let test_shm_roundtrip () =
  let v =
    run_os (fun _os api ->
        let shm = api.Api.shm_open "/seg" 8192 in
        api.Api.write_u64 shm ~off:100 42L;
        api.Api.read_u64 shm ~off:100)
  in
  Alcotest.(check int64) "rw through shm window" 42L v

let test_shm_shared_across_fork () =
  (* The whole point: unlike ordinary memory, shm writes are VISIBLE
     across the fork boundary, both directions. *)
  let child_saw, parent_sees =
    run_os (fun _os api ->
        let shm = api.Api.shm_open "/seg" 4096 in
        api.Api.write_u64 shm ~off:0 1L;
        let rfd, wfd = api.Api.pipe () in
        ignore
          (api.Api.fork (fun capi ->
               let shm' = capi.Api.reloc shm in
               let saw = capi.Api.read_u64 shm' ~off:0 in
               (* Child publishes through the segment... *)
               capi.Api.write_u64 shm' ~off:8 2L;
               ignore (capi.Api.write wfd (Bytes.of_string "g"));
               capi.Api.exit (Int64.to_int saw)));
        ignore (api.Api.read rfd 1);
        let from_child = api.Api.read_u64 shm ~off:8 in
        let _, status = api.Api.wait () in
        (status, from_child))
  in
  Alcotest.(check int) "child saw parent's value" 1 child_saw;
  Alcotest.(check int64) "parent sees child's write" 2L parent_sees

let test_shm_by_name_between_unrelated_procs () =
  let seen =
    run_os (fun os api ->
        let shm = api.Api.shm_open "/bus" 4096 in
        api.Api.write_u64 shm ~off:0 77L;
        ignore os;
        (* A spawned (not forked) process attaches by name. *)
        let rfd, wfd = api.Api.pipe () in
        ignore
          (api.Api.spawn (fun sapi ->
               let shm' = sapi.Api.shm_open "/bus" 4096 in
               let v = sapi.Api.read_u64 shm' ~off:0 in
               ignore (sapi.Api.write wfd (Bytes.of_string "g"));
               sapi.Api.exit (Int64.to_int v)));
        ignore (api.Api.read rfd 1);
        let _, status = api.Api.wait () in
        status)
  in
  Alcotest.(check int) "value crossed by name" 77 seen

let test_shm_not_copied_at_fork () =
  let copies =
    run_os ~image:(Image.make ~heap_bytes:(512 * 1024) "shmtest")
      (fun os api ->
        let shm = api.Api.shm_open "/big" (16 * 4096) in
        api.Api.write_bytes shm ~off:0 (Bytes.make 64 'x');
        let m = Kernel.meter (Os.kernel os) in
        ignore
          (api.Api.fork (fun capi ->
               let shm' = capi.Api.reloc shm in
               (* Writes to shm never trigger CoW/CoPA copies. *)
               let before =
                 Meter.get m "page_copy_child" + Meter.get m "page_copy_cow"
               in
               for i = 0 to 15 do
                 capi.Api.write_bytes shm' ~off:(i * 4096) (Bytes.make 8 'c')
               done;
               capi.Api.exit
                 (Meter.get m "page_copy_child" + Meter.get m "page_copy_cow"
                 - before)));
        let _, st = api.Api.wait () in
        ignore (Meter.get m "shm_share");
        st)
  in
  Alcotest.(check int) "no copies for shm writes" 0 copies

let test_shm_size_mismatch () =
  let raised =
    run_os (fun _os api ->
        ignore (api.Api.shm_open "/s" 4096);
        match api.Api.shm_open "/s" 8192 with
        | exception Api.Sys_error _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "size mismatch rejected" true raised

let test_shm_on_monolithic () =
  (* Transparency: MAP_SHAREDish semantics also hold on the baseline. *)
  let os = Monolithic.boot () in
  let ok = ref false in
  let _ =
    Monolithic.start os ~image:Image.hello (fun api ->
        let shm = api.Api.shm_open "/m" 4096 in
        api.Api.write_u64 shm ~off:0 5L;
        let rfd, wfd = api.Api.pipe () in
        ignore
          (api.Api.fork (fun capi ->
               let shm' = capi.Api.reloc shm in
               capi.Api.write_u64 shm' ~off:0 6L;
               ignore (capi.Api.write wfd (Bytes.of_string "g"));
               capi.Api.exit 0));
        ignore (api.Api.read rfd 1);
        ok := api.Api.read_u64 shm ~off:0 = 6L;
        ignore (api.Api.wait ()))
  in
  Monolithic.run os;
  Alcotest.(check bool) "shared on monolithic too" true !ok

let test_shm_caps_relocated_to_same_frames () =
  (* The child's relocated capability targets its own area, yet the
     physical frames are the parent's: relocation + sharing compose. *)
  let distinct_va, shared_value =
    run_os (fun _os api ->
        let shm = api.Api.shm_open "/f" 4096 in
        api.Api.write_u64 shm ~off:0 9L;
        let out = ref (false, 0L) in
        ignore
          (api.Api.fork (fun capi ->
               let shm' = capi.Api.reloc shm in
               out :=
                 ( Capability.base shm' <> Capability.base shm,
                   capi.Api.read_u64 shm' ~off:0 );
               capi.Api.exit 0));
        ignore (api.Api.wait ());
        !out)
  in
  Alcotest.(check bool) "different virtual window" true distinct_va;
  Alcotest.(check int64) "same frames" 9L shared_value

(* --- Shared libraries (§3.7) --- *)

let test_lib_shared_frames () =
  (* Two unrelated processes mapping the same library share its frames:
     physical memory does not grow with the second mapping. *)
  let frames_equal =
    run_os ~image:(Image.make ~heap_bytes:(1024 * 1024) "libtest")
      (fun os api ->
        let phys = Kernel.phys (Os.kernel os) in
        let _lib = api.Api.map_library "/libssl" (64 * 1024) in
        let rfd, wfd = api.Api.pipe () in
        let spawn_saw = ref false in
        ignore
          (api.Api.spawn (fun sapi ->
               let _lib2 = sapi.Api.map_library "/libssl" (64 * 1024) in
               ignore (sapi.Api.write wfd (Bytes.of_string "g"));
               sapi.Api.exit 0));
        ignore (api.Api.read rfd 1);
        spawn_saw := true;
        ignore (api.Api.wait ());
        (* Mapping the same library again allocates no new frames (the
           window's PTEs alias the existing ones). *)
        let before = Ufork_mem.Phys.frames_in_use phys in
        let _lib3 = api.Api.map_library "/libssl" (64 * 1024) in
        let after = Ufork_mem.Phys.frames_in_use phys in
        !spawn_saw && after = before)
  in
  Alcotest.(check bool) "library frames shared" true frames_equal

let test_lib_read_only () =
  let blocked =
    run_os (fun _os api ->
        let lib = api.Api.map_library "/libc" 4096 in
        match api.Api.write_bytes lib ~off:0 (Bytes.of_string "x") with
        | exception Capability.Violation _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "library text immutable" true blocked

let test_lib_executable_and_survives_fork () =
  let ok =
    run_os (fun _os api ->
        let lib = api.Api.map_library "/libm" 4096 in
        Alcotest.(check bool) "exec perm" true
          (Perms.has (Capability.perms lib) Perms.execute);
        ignore
          (api.Api.fork (fun capi ->
               let lib' = capi.Api.reloc lib in
               (* Still readable and still the same shared content. *)
               ignore (capi.Api.read_bytes lib' ~off:0 ~len:16);
               capi.Api.exit 0));
        snd (api.Api.wait ()) = 0)
  in
  Alcotest.(check bool) "library usable after fork" true ok

(* --- posix_spawn --- *)

let test_spawn_fresh_state () =
  let status =
    run_os (fun _os api ->
        let c = api.Api.malloc 32 in
        api.Api.write_u64 c ~off:0 123L;
        api.Api.got_set 0 c;
        ignore
          (api.Api.spawn (fun sapi ->
               (* A spawned process starts from a fresh image: its GOT is
                  empty (untagged), unlike a forked child's. *)
               let g = sapi.Api.got_get 0 in
               sapi.Api.exit (if Capability.tag g then 1 else 0)));
        snd (api.Api.wait ()))
  in
  Alcotest.(check int) "no inherited memory state" 0 status

let test_spawn_inherits_fds () =
  let got =
    run_os (fun _os api ->
        let rfd, wfd = api.Api.pipe () in
        ignore
          (api.Api.spawn (fun sapi ->
               ignore (sapi.Api.write wfd (Bytes.of_string "spawned"));
               sapi.Api.exit 0));
        let b = api.Api.read rfd 7 in
        ignore (api.Api.wait ());
        Bytes.to_string b)
  in
  Alcotest.(check string) "pipe inherited" "spawned" got

let test_spawn_cheaper_than_fork () =
  let spawn_cost, fork_cost =
    run_os ~image:(Image.redis ~heap_bytes:(8 * 1024 * 1024)) (fun _os api ->
        (* Give the parent a fat heap so fork has PTEs to copy. *)
        let c = api.Api.malloc (4 * 1024 * 1024) in
        api.Api.write_bytes c ~off:0 (Bytes.make 64 'x');
        let t0 = api.Api.now () in
        ignore (api.Api.spawn (fun sapi -> sapi.Api.exit 0));
        let spawn_cost = Int64.sub (api.Api.now ()) t0 in
        ignore (api.Api.wait ());
        let t1 = api.Api.now () in
        ignore (api.Api.fork (fun capi -> capi.Api.exit 0));
        let fork_cost = Int64.sub (api.Api.now ()) t1 in
        ignore (api.Api.wait ());
        (spawn_cost, fork_cost))
  in
  (* Spawn skips the state duplication but pays eager image mapping; for a
     process with a big live heap fork costs more. *)
  Alcotest.(check bool) "fork > spawn on a fat process" true
    (fork_cost > spawn_cost)

let test_spawn_wait_status () =
  let pid_match =
    run_os (fun _os api ->
        let pid = api.Api.spawn (fun sapi -> sapi.Api.exit 9) in
        let wpid, status = api.Api.wait () in
        wpid = pid && status = 9)
  in
  Alcotest.(check bool) "spawn children are waitable" true pid_match

(* --- kill --- *)

let test_kill_at_next_syscall () =
  let status =
    run_os (fun _os api ->
        let rfd, wfd = api.Api.pipe () in
        let pid =
          api.Api.fork (fun capi ->
              ignore (capi.Api.write wfd (Bytes.of_string "r"));
              (* Compute for a long time, then hit a syscall: the kill
                 lands there. *)
              capi.Api.compute 1_000_000L;
              ignore (capi.Api.getpid ());
              ignore (capi.Api.write wfd (Bytes.of_string "x"));
              capi.Api.exit 0)
        in
        ignore (api.Api.read rfd 1);
        api.Api.kill pid;
        snd (api.Api.wait ()))
  in
  Alcotest.(check int) "killed with 137" 137 status

let test_kill_blocked_in_wait () =
  let status =
    run_os (fun _os api ->
        let ready_r, ready_w = api.Api.pipe () in
        let never_r, _never_w = api.Api.pipe () in
        let middle =
          api.Api.fork (fun capi ->
              (* This child forks a grandchild that never finishes, then
                 blocks in wait() — the kill must wake it. *)
              ignore
                (capi.Api.fork (fun gapi ->
                     ignore (gapi.Api.read never_r 1) (* blocks forever *)));
              ignore (capi.Api.write ready_w (Bytes.of_string "w"));
              ignore (capi.Api.wait ());
              capi.Api.exit 0)
        in
        ignore (api.Api.read ready_r 1);
        api.Api.kill middle;
        let rec reap () =
          let pid, st = api.Api.wait () in
          if pid = middle then st else reap ()
        in
        reap ())
  in
  Alcotest.(check int) "blocked waiter killed" 137 status

let test_kill_bad_pid () =
  let raised =
    run_os (fun _os api ->
        match api.Api.kill 9999 with
        | exception Api.Sys_error e -> e
        | _ -> "")
  in
  Alcotest.(check string) "ESRCH" "ESRCH" raised

(* --- ASLR --- *)

let area_base_of_child ?config () =
  run_os ?config (fun os api ->
      let pid = api.Api.fork (fun capi -> capi.Api.exit 0) in
      ignore (api.Api.wait ());
      match Kernel.find_uproc (Os.kernel os) pid with
      | Some u -> u.Uproc.area_base
      | None -> -1)

let test_aslr_randomizes_bases () =
  let base_a =
    area_base_of_child ~config:(Config.with_aslr 1L Config.ufork_fast) ()
  in
  let base_b =
    area_base_of_child ~config:(Config.with_aslr 99L Config.ufork_fast) ()
  in
  let base_off = area_base_of_child () in
  Alcotest.(check bool) "seeds change layout" true (base_a <> base_b);
  Alcotest.(check bool) "aslr shifts vs no aslr" true
    (base_a <> base_off || base_b <> base_off);
  Alcotest.(check bool) "still page aligned" true
    (base_a mod Addr.page_size = 0 && base_b mod Addr.page_size = 0)

let test_aslr_everything_still_works () =
  let ok =
    run_os ~config:(Config.with_aslr 7L Config.ufork_fast) (fun _os api ->
        let c = api.Api.malloc 64 in
        api.Api.write_bytes c ~off:0 (Bytes.of_string "aslr");
        api.Api.got_set 0 c;
        ignore
          (api.Api.fork (fun capi ->
               let v =
                 Bytes.to_string
                   (capi.Api.read_bytes (capi.Api.got_get 0) ~off:0 ~len:4)
               in
               capi.Api.exit (if v = "aslr" then 0 else 1)));
        snd (api.Api.wait ()) = 0)
  in
  Alcotest.(check bool) "fork + relocation under ASLR" true ok

(* --- Sealed entry capability --- *)

let test_entry_cap_is_sealed () =
  let os = Os.boot () in
  let cap = Kernel.syscall_entry_cap (Os.kernel os) in
  Alcotest.(check bool) "sealed" true (Capability.is_sealed cap);
  (* Not dereferenceable... *)
  (match Capability.check_access cap ~perm:Perms.load ~addr:(Capability.base cap) ~len:1 with
  | exception Capability.Violation _ -> ()
  | _ -> Alcotest.fail "sealed cap dereferenced");
  (* ...not modifiable... *)
  (match Capability.with_cursor cap 0 with
  | exception Capability.Violation _ -> ()
  | _ -> Alcotest.fail "sealed cap modified");
  (* ...but invocable (that is the system call). *)
  let pcc = Capability.invoke cap in
  Alcotest.(check bool) "invoke yields kernel PCC" true
    (not (Capability.is_sealed pcc) && Perms.has (Capability.perms pcc) Perms.execute)

let test_entry_cap_cannot_be_unsealed_by_user () =
  let os = Os.boot () in
  let kernel = Os.kernel os in
  let cap = Kernel.syscall_entry_cap kernel in
  (* A user capability has no Unseal permission. *)
  let user =
    Capability.mint ~parent:(Kernel.root_cap kernel) ~base:0x40000000
      ~length:16 ~perms:Perms.user_data
  in
  match Capability.unseal ~authority:user cap with
  | exception Capability.Violation _ -> ()
  | _ -> Alcotest.fail "user unsealed the kernel entry"

(* --- Fragmentation accounting (§6) --- *)

let test_area_reuse_bounds_arena () =
  (* Fork/exit churn must not grow the arena: reaped areas are recycled. *)
  let spans =
    run_os (fun os api ->
        let kernel = Os.kernel os in
        let span () =
          Hashtbl.length (Hashtbl.create 0) |> ignore;
          (* measure via area registry of live procs *)
          ignore kernel;
          ()
        in
        ignore span;
        let bases = ref [] in
        for _ = 1 to 20 do
          let pid = api.Api.fork (fun capi -> capi.Api.exit 0) in
          (match Kernel.find_uproc kernel pid with
          | Some u -> bases := u.Uproc.area_base :: !bases
          | None -> ());
          ignore (api.Api.wait ())
        done;
        List.sort_uniq compare !bases)
  in
  Alcotest.(check int) "all 20 children reused one area" 1 (List.length spans)

let suite =
  [
    ("shm roundtrip", `Quick, test_shm_roundtrip);
    ("shm shared across fork", `Quick, test_shm_shared_across_fork);
    ("shm by name", `Quick, test_shm_by_name_between_unrelated_procs);
    ("shm never copied at fork", `Quick, test_shm_not_copied_at_fork);
    ("shm size mismatch", `Quick, test_shm_size_mismatch);
    ("shm on monolithic", `Quick, test_shm_on_monolithic);
    ("shm relocation composes", `Quick, test_shm_caps_relocated_to_same_frames);
    ("lib shared frames", `Quick, test_lib_shared_frames);
    ("lib read only", `Quick, test_lib_read_only);
    ("lib exec + fork", `Quick, test_lib_executable_and_survives_fork);
    ("spawn fresh state", `Quick, test_spawn_fresh_state);
    ("spawn inherits fds", `Quick, test_spawn_inherits_fds);
    ("spawn cheaper than fork", `Quick, test_spawn_cheaper_than_fork);
    ("spawn waitable", `Quick, test_spawn_wait_status);
    ("kill at syscall", `Quick, test_kill_at_next_syscall);
    ("kill blocked waiter", `Quick, test_kill_blocked_in_wait);
    ("kill bad pid", `Quick, test_kill_bad_pid);
    ("aslr randomizes", `Quick, test_aslr_randomizes_bases);
    ("aslr still correct", `Quick, test_aslr_everything_still_works);
    ("entry cap sealed", `Quick, test_entry_cap_is_sealed);
    ("entry cap unsealable", `Quick, test_entry_cap_cannot_be_unsealed_by_user);
    ("area reuse bounds arena", `Quick, test_area_reuse_bounds_arena);
  ]
