(* Throwaway: dump meter counts + cycle totals for the golden scenarios. *)
module Engine = Ufork_sim.Engine
module Meter = Ufork_sim.Meter
module Trace = Ufork_sim.Trace
module Costs = Ufork_sim.Costs
module Kernel = Ufork_sas.Kernel
module Config = Ufork_sas.Config
module Image = Ufork_sas.Image
module Strategy = Ufork_core.Strategy
module Os = Ufork_core.Os
module Monolithic = Ufork_baselines.Monolithic
module Vmclone = Ufork_baselines.Vmclone
module Hello = Ufork_apps.Hello
module Kvstore = Ufork_apps.Kvstore
module Rdb = Ufork_apps.Rdb
module Keyspace = Ufork_workload.Keyspace
module Checker = Ufork_analysis.Checker

type booted = {
  kernel : Kernel.t;
  engine : Engine.t;
  start : image:Image.t -> (Ufork_sas.Api.t -> unit) -> unit;
  run : unit -> unit;
}

let boot ?(cores = 4) = function
  | "ufork-copa" ->
      let os =
        Os.boot ~cores ~config:Config.ufork_fast ~strategy:Strategy.Copa ()
      in
      {
        kernel = Os.kernel os;
        engine = Os.engine os;
        start = (fun ~image main -> ignore (Os.start os ~image main));
        run = (fun () -> Os.run os);
      }
  | "cheribsd" ->
      let os = Monolithic.boot ~cores () in
      {
        kernel = Monolithic.kernel os;
        engine = Monolithic.engine os;
        start = (fun ~image main -> ignore (Monolithic.start os ~image main));
        run = (fun () -> Monolithic.run os);
      }
  | "nephele" ->
      let os = Vmclone.boot ~cores () in
      {
        kernel = Vmclone.kernel os;
        engine = Vmclone.engine os;
        start = (fun ~image main -> ignore (Vmclone.start os ~image main));
        run = (fun () -> Vmclone.run os);
      }
  | s -> invalid_arg s

let finish b =
  Trace.audit (Kernel.trace b.kernel) ~costs:(Kernel.costs b.kernel)
    ~elapsed:(Engine.advanced b.engine);
  Checker.assert_safe b.kernel

let dump label b =
  Printf.printf "SCENARIO %s\n" label;
  Printf.printf "advanced %Ld\n" (Engine.advanced b.engine);
  Printf.printf "charged %Ld\n" (Trace.total_charged (Kernel.trace b.kernel));
  List.iter
    (fun (k, v) -> Printf.printf "METER %s %d\n" k v)
    (Meter.to_list (Kernel.meter b.kernel));
  (* Per-phase attribution: a change that moves cycles between phases
     without changing the totals is still a regression. *)
  List.iter
    (fun (st : Trace.span_total) ->
      Printf.printf "SPAN %s self %Ld total %Ld n %d\n"
        (String.concat ";" st.Trace.span_path)
        st.Trace.span_self st.Trace.span_cycles st.Trace.span_count)
    (Trace.span_totals (Kernel.trace b.kernel))

let hello ?cores ?(tag = "hello") label =
  let b = boot ?cores label in
  b.start ~image:Image.hello (fun api ->
      ignore (Hello.fork_once api);
      Hello.reap api);
  b.run ();
  finish b;
  dump (tag ^ "/" ^ label) b

let redis_image ~db_bytes =
  let heap_bytes = max (4 * 1024 * 1024) (db_bytes * 137 / 100) in
  Image.redis ~heap_bytes

let redis label =
  let entries = 100 and value_len = 100 * 1024 in
  let db_bytes = entries * value_len in
  let b = boot label in
  let result = ref None in
  b.start
    ~image:(redis_image ~db_bytes)
    (fun api ->
      let store = Kvstore.create api ~buckets:1024 () in
      Keyspace.populate store ~entries ~value_len ~seed:0x5eedL;
      result := Some (Rdb.bgsave api store ~path:"/dump.rdb"));
  b.run ();
  finish b;
  assert (!result <> None);
  dump ("redis10mb/" ^ label) b

let () =
  hello "ufork-copa";
  hello "cheribsd";
  hello "nephele";
  (* 8-core point: pins the per-core run-queue / freelist / shootdown
     accounting at a core count above the default 4. *)
  hello ~cores:8 ~tag:"hello-8core" "ufork-copa";
  redis "ufork-copa";
  redis "cheribsd";
  redis "nephele"
